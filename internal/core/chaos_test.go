package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"webdis/internal/centralized"
	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// chaosRetry is the fault-tolerance configuration under test: bounded
// exponential backoff ahead of the hybrid bounce.
var chaosRetry = server.RetryPolicy{
	Attempts: 5,
	Base:     time.Millisecond,
	Max:      20 * time.Millisecond,
	Timeout:  500 * time.Millisecond,
}

// rowSet flattens result tables into a comparable set of rows.
func rowSet(tables []client.ResultTable) map[string]bool {
	set := make(map[string]bool)
	for _, tb := range tables {
		for _, row := range tb.Rows {
			set[fmt.Sprintf("%d|%s", tb.Stage, strings.Join(row, "|"))] = true
		}
	}
	return set
}

func subset(sub, super map[string]bool) (string, bool) {
	for k := range sub {
		if !super[k] {
			return k, false
		}
	}
	return "", true
}

// baselineRows computes the centralized answer over a clean (fault-free)
// deployment of the same web — the ground truth the chaos runs are
// differentially checked against.
func baselineRows(t *testing.T, web *webgraph.Web, src string) map[string]bool {
	t.Helper()
	d, err := NewDeployment(Config{Web: web})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	res, err := centralized.Run(d.Network(), "central/results", disql.MustParse(src), centralized.Options{})
	if err != nil {
		t.Fatalf("centralized baseline: %v", err)
	}
	return rowSet(res.Tables)
}

func chaosWeb(seed int64) *webgraph.Web {
	// One page per site, so every tree edge is a global link.
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 3, PagesPerSite: 1,
		MarkerFrac: 0.6, FillerWords: 30, Seed: seed,
	})
}

const chaosDISQL = `
select d.url
from document d such that "http://t0.example/p0.html" N|(G*3) d
where d.text contains "` + webgraph.Marker + `"`

// TestChaosDropDifferential injects seeded message drops (plus a dash of
// mid-frame severs) at increasing rates and differentially checks the
// fault-tolerant engine against the centralized baseline: delivered rows
// are always a subset of the true answer, retry+bounce recovers the full
// answer at moderate loss, and any shortfall is accounted for by an
// explicit recovery/loss counter — rows never vanish silently.
func TestChaosDropDifferential(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		web := chaosWeb(seed)
		want := baselineRows(t, web, chaosDISQL)
		if len(want) == 0 {
			t.Fatalf("seed %d: empty baseline", seed)
		}
		for _, drop := range []float64{0, 0.05, 0.20} {
			t.Run(fmt.Sprintf("seed%d/drop%.0f%%", seed, drop*100), func(t *testing.T) {
				d, err := NewDeployment(Config{
					Web: web,
					Net: netsim.Options{Faults: netsim.FaultPlan{
						Seed: seed, Drop: drop, Sever: drop / 5,
					}},
					Server:    server.Options{Retry: chaosRetry},
					Hybrid:    true,
					ReapGrace: 400 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				q, err := d.Run(chaosDISQL, 30*time.Second)
				if err != nil {
					t.Fatalf("query did not terminate cleanly: %v", err)
				}
				got := rowSet(q.Results())
				if k, ok := subset(got, want); !ok {
					t.Fatalf("delivered row %q not in the centralized answer", k)
				}

				sn := d.Metrics().Snapshot()
				fs := q.FallbackStats()
				net := d.Network().Stats().Snapshot().Total()
				lossSignals := sn.Terminated + sn.ForwardFailed + sn.CHTReaped +
					int64(fs.LoadFailures)
				if len(got) != len(want) && lossSignals == 0 {
					t.Errorf("lost %d rows with no loss counter raised (metrics %+v, fallback %+v)",
						len(want)-len(got), sn, fs)
				}
				if lossSignals == 0 && len(got) != len(want) {
					t.Errorf("rows = %d, want %d", len(got), len(want))
				}

				switch drop {
				case 0:
					if len(got) != len(want) {
						t.Errorf("fault-free rows = %d, want %d", len(got), len(want))
					}
					if sn.Retries != 0 || net.Dropped != 0 {
						t.Errorf("fault-free run shows retries=%d dropped=%d", sn.Retries, net.Dropped)
					}
				case 0.05:
					// Moderate loss: retry (and bounce, if a retry loop is
					// exhausted) recovers the complete answer.
					if len(got) != len(want) {
						t.Errorf("rows at 5%% drop = %d, want full answer %d (metrics %+v, fallback %+v)",
							len(got), len(want), sn, fs)
					}
					if net.Dropped == 0 || sn.Retries == 0 {
						t.Errorf("expected injected drops and retries, got dropped=%d retries=%d",
							net.Dropped, sn.Retries)
					}
				case 0.20:
					if net.Dropped == 0 {
						t.Error("no drops injected at 20%")
					}
				}
			})
		}
	}
}

// TestChaosNoRetryAblation turns the retry/bounce machinery off and keeps
// only the reaper: at 20% drop the classic engine demonstrably loses rows
// (the recovery path, not the fault model, is what preserved them above),
// yet every run still terminates within its deadline.
func TestChaosNoRetryAblation(t *testing.T) {
	lost := false
	for _, seed := range []int64{1, 2, 3} {
		web := chaosWeb(seed)
		want := baselineRows(t, web, chaosDISQL)
		d, err := NewDeployment(Config{
			Web:       web,
			Net:       netsim.Options{Faults: netsim.FaultPlan{Seed: seed, Drop: 0.20}},
			ReapGrace: 400 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		q, runErr := d.Run(chaosDISQL, 30*time.Second)
		if runErr != nil {
			if errors.Is(runErr, client.ErrTimeout) {
				t.Fatalf("seed %d: no-retry run did not terminate: %v", seed, runErr)
			}
			// The classic engine could not even deliver the initial clone
			// (Submit surfaces the dropped dispatch): total loss, promptly.
			lost = true
			d.Close()
			continue
		}
		got := rowSet(q.Results())
		if k, ok := subset(got, want); !ok {
			t.Fatalf("seed %d: delivered row %q not in the centralized answer", seed, k)
		}
		sn := d.Metrics().Snapshot()
		if sn.Retries != 0 {
			t.Errorf("seed %d: ablation performed %d retries", seed, sn.Retries)
		}
		if len(got) < len(want) {
			lost = true
			if sn.Terminated+sn.ForwardFailed+sn.CHTReaped == 0 {
				t.Errorf("seed %d: lost rows with no loss counter raised (%+v)", seed, sn)
			}
		}
		d.Close()
	}
	if !lost {
		t.Error("no-retry engine lost no rows at 20% drop across any seed; ablation shows nothing")
	}
}

// TestChaosDownSiteDegradedMode takes one leaf site down for the whole
// run. Forward retries to it exhaust, the clone bounces to the user-site,
// and the fallback's fetches fail too — so the engine degrades cleanly:
// it returns exactly the answer restricted to reachable documents, the
// bounce and load-failure counters account for the difference, and no CHT
// entry is left for the reaper (the bounce path retired everything).
func TestChaosDownSiteDegradedMode(t *testing.T) {
	web := webgraph.Tree(webgraph.TreeOpts{
		Fanout: 2, Depth: 3, PagesPerSite: 1, MarkerFrac: 1.0, Seed: 5,
	})
	const src = `
select d.url
from document d such that "http://t0.example/p0.html" N|(G*3) d
where d.text contains "` + webgraph.Marker + `"`
	const victim = "t14.example" // the last leaf's site

	want := baselineRows(t, web, src)
	reachable := make(map[string]bool)
	for k := range want {
		if !strings.Contains(k, victim) {
			reachable[k] = true
		}
	}
	if len(reachable) == len(want) {
		t.Fatal("victim site contributes no rows; test proves nothing")
	}

	d, err := NewDeployment(Config{
		Web: web,
		Net: netsim.Options{Faults: netsim.FaultPlan{
			Windows: []netsim.DownWindow{{Endpoint: victim, From: 0, Until: time.Hour}},
		}},
		Server:    server.Options{Retry: server.RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 5 * time.Millisecond}},
		Hybrid:    true,
		ReapGrace: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q, err := d.Run(src, waitFor)
	if err != nil {
		t.Fatalf("degraded run did not terminate cleanly: %v", err)
	}
	got := rowSet(q.Results())
	if len(got) != len(reachable) {
		t.Errorf("rows = %d, want the %d reachable rows (of %d total)", len(got), len(reachable), len(want))
	}
	if k, ok := subset(got, reachable); !ok {
		t.Errorf("delivered row %q is not reachable", k)
	}
	sn := d.Metrics().Snapshot()
	fs := q.FallbackStats()
	if sn.Retries == 0 || sn.RecoveredByBounce == 0 {
		t.Errorf("expected retry exhaustion and bounce recovery, got retries=%d bounced=%d",
			sn.Retries, sn.RecoveredByBounce)
	}
	if fs.LoadFailures == 0 {
		t.Errorf("fallback should have failed to load the down site's documents: %+v", fs)
	}
	// The bounce path retired every entry itself; nothing was orphaned.
	if q.Partial() || q.Stats().Reaped != 0 {
		t.Errorf("clean degraded run marked Partial=%v reaped=%d", q.Partial(), q.Stats().Reaped)
	}
}

// TestChaosOrphanReapedAfterSilentCrash partitions one site's *outbound*
// edge to the user mid-deployment: the site accepts clones but its result
// dispatches never arrive, so its CHT entries are orphaned — the exact
// case retries and bounces cannot fix. The grace-window reaper must
// retire them, mark the query Partial, name the unreachable site, and
// still deliver every row the healthy sites produced.
func TestChaosOrphanReapedAfterSilentCrash(t *testing.T) {
	const victim = "dsl.serc.iisc.ernet.in"
	d, err := NewDeployment(Config{
		Web:       webgraph.Campus(),
		Server:    server.Options{Retry: server.RetryPolicy{Attempts: 2, Base: time.Millisecond}},
		ReapGrace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Cut only the victim's path back to the user: it still receives and
	// processes clones, but its reports vanish (prefix "user" covers the
	// per-query collector endpoints).
	d.Network().Block(victim, "user", true)

	q, err := d.Run(webgraph.CampusDISQL, waitFor)
	if err != nil {
		t.Fatalf("query did not terminate despite the silent crash: %v", err)
	}
	if !q.Partial() {
		t.Fatal("query not marked Partial after orphaned entries were reaped")
	}
	if got := q.Unreachable(); len(got) != 1 || got[0] != victim {
		t.Errorf("Unreachable() = %v, want [%s]", got, victim)
	}
	st := q.Stats()
	if st.Reaped == 0 {
		t.Error("no CHT entries reaped")
	}
	sn := d.Metrics().Snapshot()
	if sn.CHTReaped != int64(st.Reaped) {
		t.Errorf("metrics CHTReaped=%d, query reaped=%d", sn.CHTReaped, st.Reaped)
	}
	if sn.Terminated == 0 {
		t.Error("the crashed site never hit passive termination")
	}
	// The two reachable conveners still arrive (Figure 8 minus the victim).
	results := q.Results()
	if len(results) != 2 || len(results[1].Rows) != 2 {
		t.Errorf("results = %+v, want q2 with the 2 reachable convener rows", results)
	}
}

// TestChaosFaultScheduleProperty is the property test: for any seeded
// fault schedule (random drop and sever rates, plus a transient down
// window on half the runs), a fault-tolerant query always terminates
// within its deadline, and Partial is set exactly when orphaned CHT
// entries were reaped.
func TestChaosFaultScheduleProperty(t *testing.T) {
	const src = `
select d.url
from document d such that "http://r0.example/p0.html" N|(G*4) d
where d.text contains "` + webgraph.Marker + `"`
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			web := webgraph.Random(webgraph.RandomOpts{
				Sites: 10, PagesPerSite: 1, GlobalOut: 2,
				MarkerFrac: 0.5, FillerWords: 30, Seed: seed,
			})
			plan := netsim.FaultPlan{
				Seed:  seed,
				Drop:  r.Float64() * 0.25,
				Sever: r.Float64() * 0.08,
			}
			if seed%2 == 0 {
				plan.Windows = []netsim.DownWindow{{
					Endpoint: fmt.Sprintf("r%d.example", 1+r.Intn(9)),
					From:     0, Until: 50 * time.Millisecond,
				}}
			}
			d, err := NewDeployment(Config{
				Web: web,
				Net: netsim.Options{Faults: plan},
				Server: server.Options{Retry: server.RetryPolicy{
					Attempts: 3, Base: time.Millisecond, Max: 10 * time.Millisecond,
					Timeout: 200 * time.Millisecond,
				}},
				Hybrid:    true,
				ReapGrace: 300 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			q, err := d.Run(src, 20*time.Second)
			if err != nil {
				t.Fatalf("schedule %+v: query did not terminate within deadline: %v", plan, err)
			}
			if q.Partial() != (q.Stats().Reaped > 0) {
				t.Errorf("schedule %+v: Partial=%v but reaped=%d", plan, q.Partial(), q.Stats().Reaped)
			}
		})
	}
}
