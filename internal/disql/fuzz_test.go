package disql

import (
	"errors"
	"testing"
)

// FuzzParse asserts the parser's error contract: any input either
// parses into a web-query that formats and re-parses, or fails with a
// typed *SyntaxError — it never panics and never returns a bare error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		exampleQuery1,
		exampleQuery2,
		groupedQuery,
		`select count(*) from document d such that "http://s/" L* d`,
		`select d.url from document d such that "http://s/" G|L d order by d.url desc limit 7`,
		`select a.href, b.href from document d such that "http://s/" L* d, anchor a, anchor b where a.label = b.label`,
		`select a.label, sum(a.href) from document d such that ("http://s/", "http://t/") N|(L*3) d, anchor a group by a.label limit 2`,
		`select d.url from document d such that index("databases") L d where d.length > 4096`,
		`select count(`,
		`select count(*) from document d such that "http://s/" L* d group by`,
		`select d.url from document d such that "unterminated`,
		`select d.url from document d such that "http://s/" L* d limit 99999999999999999999`,
		`select d.url from document d such that "http://s/" L* d order by count(d.url) desc`,
		"select \x00 from \xff",
		`group by order by limit`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		w, err := Parse(src)
		if err != nil {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Fatalf("Parse(%q) returned a non-SyntaxError: %T %v", src, err, err)
			}
			return
		}
		// Valid parses must survive the formatter: Format output is part
		// of the wire (clones carry canonical text).
		text := Format(w)
		if _, err := Parse(text); err != nil {
			t.Fatalf("Format(Parse(%q)) does not re-parse: %v\n%s", src, err, text)
		}
	})
}
