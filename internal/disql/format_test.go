package disql

import (
	"strings"
	"testing"

	"webdis/internal/pre"
)

// equivalent reports whether two web-queries have the same starts, PREs,
// node-queries and projections.
func equivalent(t *testing.T, a, b *WebQuery) bool {
	t.Helper()
	if strings.Join(a.Start, "|") != strings.Join(b.Start, "|") {
		t.Logf("starts differ: %v vs %v", a.Start, b.Start)
		return false
	}
	if len(a.Stages) != len(b.Stages) {
		t.Logf("stage counts differ")
		return false
	}
	for i := range a.Stages {
		if !pre.Equal(a.Stages[i].PRE, b.Stages[i].PRE) {
			t.Logf("stage %d PRE: %s vs %s", i, a.Stages[i].PRE, b.Stages[i].PRE)
			return false
		}
		if a.Stages[i].Query.String() != b.Stages[i].Query.String() {
			t.Logf("stage %d query:\n%s\n%s", i, a.Stages[i].Query, b.Stages[i].Query)
			return false
		}
	}
	return true
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{
		exampleQuery1,
		exampleQuery2,
		`select d.url from document d such that ("http://a.example/x", "http://b.example/y") G|L d where d.title contains "z"`,
		`select d.url, a.href from document d such that "http://a.example/" N|(L|G)*3 d, anchor a where a.ltype = "G" and not (d.length < 100 or d.text contains "draft")`,
		`select d1.url from document d0 such that "http://a.example/" L d0, document d1 such that d0 G·(L*2) d1 where d1.text not contains "spam"`,
	}
	for _, src := range srcs {
		orig, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text := Format(orig)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("re-Parse of formatted query failed: %v\n%s", err, text)
		}
		if !equivalent(t, orig, again) {
			t.Errorf("round trip changed the query:\noriginal: %s\nformatted:\n%s", src, text)
		}
		// Formatting is a fixpoint after one round.
		if Format(again) != text {
			t.Errorf("Format is not stable:\n%s\nvs\n%s", text, Format(again))
		}
	}
}

func TestFormatCampusLooksLikeThePaper(t *testing.T) {
	w := MustParse(exampleQuery2)
	text := Format(w)
	for _, frag := range []string{
		"select d0.url, d1.url, r.text",
		`document d0 such that "http://csa.iisc.ernet.in" L d0`,
		"document d1 such that d0 G·L*1 d1",
		`relinfon r such that r.delimiter = "hr"`,
		`where r.text contains "convener"`,
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("formatted query missing %q:\n%s", frag, text)
		}
	}
}
