package disql

import (
	"sort"
	"strconv"
	"strings"

	"webdis/internal/nodequery"
	"webdis/internal/pre"
	"webdis/internal/relmodel"
)

// Parse translates a DISQL query into the formal web-query. The grammar
// (reconstructed from the paper's examples and the DISCOVER thesis it
// cites, extended with the aggregation clauses of the planner) is:
//
//	query      := SELECT selitem (',' selitem)* FROM item+
//	              [GROUP BY colref (',' colref)*]
//	              [ORDER BY orderitem (',' orderitem)*]
//	              [LIMIT number]
//	selitem    := colref | agg
//	agg        := (COUNT|SUM|MIN|MAX) '(' colref ')' | COUNT '(' '*' ')'
//	orderitem  := selitem [ASC|DESC]
//	item       := WHERE orExpr
//	           |  relname var [SUCH THAT suchclause]  [',']
//	relname    := DOCUMENT | ANCHOR | RELINFON
//	suchclause := pathclause | orExpr
//	pathclause := source PRE var
//	source     := string | '(' string (',' string)* ')' | var
//	orExpr     := andExpr (OR andExpr)*
//	andExpr    := notExpr (AND notExpr)*
//	notExpr    := NOT notExpr | '(' orExpr ')' | cmp
//	cmp        := operand ('='|'!='|'<>'|'<'|'<='|'>'|'>='|CONTAINS|NOT CONTAINS) operand
//	operand    := string | number | colref
//	colref     := var '.' attr
//
// Every `document d such that <source> <PRE> d` clause opens a new
// sub-query (one stage of the web-query); the source of the first stage is
// the StartNode URL set, and the source of each later stage must be the
// document variable of the immediately preceding stage (the paper's
// query-forwarding chain). A WHERE item attaches to the sub-query that is
// open when it appears. The select list is split across stages by the
// variables it references (paper Section 2.3).
//
// A `colref = colref` comparison between two variables of one stage is an
// equi-join, which the planner executes as a hash join. Aggregates range
// over the distinct result set of the whole query; plain select columns
// must then appear in GROUP BY, aggregate arguments must reference
// final-stage variables, and GROUP BY may reference earlier stages'
// document attributes (they travel in the clone environment). GROUP,
// ORDER and LIMIT are reserved where a relation declaration could start.
//
// All failures return *SyntaxError and never panic (FuzzParse pins this).
func Parse(src string) (*WebQuery, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	w, err := p.query()
	if err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		if _, ok := err.(*SyntaxError); ok {
			return nil, err
		}
		return nil, &SyntaxError{Offset: -1, Msg: err.Error(), Err: err}
	}
	return w, nil
}

// MustParse is Parse, panicking on error; for tests and fixed queries.
func MustParse(src string) *WebQuery {
	w, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return w
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token { return p.toks[p.pos] }

// next consumes the current token; the trailing EOF token is sticky so
// runaway lookahead can never index past the slice.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// peek returns the token after the current one (EOF-clamped).
func (p *parser) peek() token {
	if p.pos+1 >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+1]
}

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return serr(p.cur().pos, "expected %q, found %s at offset %d", kw, p.cur(), p.cur().pos)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.cur()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

// subquery accumulates one stage while parsing.
type subquery struct {
	pre       pre.Expr
	docVar    string
	srcVar    string   // document variable of the previous stage, or ""
	starts    []string // StartNode URLs (first stage only)
	startTerm string   // index("term") source (first stage only)
	vars      []nodequery.VarDecl
	where     *nodequery.Pred
	selects   []nodequery.ColRef
}

// tailSpec holds the parsed GROUP BY / ORDER BY / LIMIT clauses.
type tailSpec struct {
	groupBy []nodequery.ColRef
	orderBy []nodequery.OrderKey
	limit   int
}

func (t *tailSpec) empty() bool {
	return len(t.groupBy) == 0 && len(t.orderBy) == 0 && t.limit == 0
}

var relNames = map[string]bool{"document": true, "anchor": true, "relinfon": true}
var preSymbols = map[string]bool{"I": true, "L": true, "G": true, "N": true}
var aggKinds = map[string]nodequery.AggKind{
	"count": nodequery.AggCount,
	"sum":   nodequery.AggSum,
	"min":   nodequery.AggMin,
	"max":   nodequery.AggMax,
}

func (p *parser) query() (*WebQuery, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	var items []nodequery.OutputCol
	for {
		c, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		items = append(items, c)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	var subs []*subquery
	current := func() *subquery {
		if len(subs) == 0 {
			return nil
		}
		return subs[len(subs)-1]
	}
	for p.cur().kind != tokEOF {
		if p.acceptPunct(",") {
			continue
		}
		if p.isKeyword("group") || p.isKeyword("order") || p.isKeyword("limit") {
			break
		}
		if p.acceptKeyword("where") {
			pred, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			sq := current()
			if sq == nil {
				return nil, serr(p.cur().pos, "where clause before any relation declaration")
			}
			sq.where = nodequery.Conj(sq.where, pred)
			continue
		}
		t := p.cur()
		if t.kind != tokIdent || !relNames[strings.ToLower(t.text)] {
			return nil, serr(t.pos, "expected relation name or where, found %s at offset %d", t, t.pos)
		}
		rel := strings.ToLower(p.next().text)
		nameTok := p.next()
		if nameTok.kind != tokIdent {
			return nil, serr(nameTok.pos, "expected variable name after %q, found %s at offset %d", rel, nameTok, nameTok.pos)
		}
		name := nameTok.text
		if preSymbols[name] || relNames[strings.ToLower(name)] || strings.EqualFold(name, "index") {
			return nil, serr(nameTok.pos, "%q cannot be used as a variable name at offset %d", name, nameTok.pos)
		}
		hasSuch := false
		if p.acceptKeyword("such") {
			if err := p.expectKeyword("that"); err != nil {
				return nil, err
			}
			hasSuch = true
		}
		if rel == "document" {
			if !hasSuch {
				return nil, serr(nameTok.pos, "document variable %q needs a `such that <path>` clause at offset %d", name, nameTok.pos)
			}
			sq, err := p.pathClause(name)
			if err != nil {
				return nil, err
			}
			subs = append(subs, sq)
			continue
		}
		sq := current()
		if sq == nil {
			return nil, serr(nameTok.pos, "%s variable %q declared before any document variable", rel, name)
		}
		decl := nodequery.VarDecl{Name: name, Rel: rel}
		if hasSuch {
			pred, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			decl.Cond = pred
		}
		sq.vars = append(sq.vars, decl)
	}
	tail, err := p.tail()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, serr(p.cur().pos, "unexpected %s after the query at offset %d", p.cur(), p.cur().pos)
	}
	return assemble(subs, items, tail)
}

// selectItem parses one select-list or order-by item: a plain column
// reference or an aggregate call. count/sum/min/max act as function
// names only when immediately followed by '('.
func (p *parser) selectItem() (nodequery.OutputCol, error) {
	t := p.cur()
	if t.kind == tokIdent {
		if kind, ok := aggKinds[strings.ToLower(t.text)]; ok &&
			p.peek().kind == tokPunct && p.peek().text == "(" {
			p.next() // function name
			p.next() // '('
			if p.acceptPunct("*") {
				if kind != nodequery.AggCount {
					return nodequery.OutputCol{}, serr(t.pos, "only count may aggregate over *, not %s at offset %d", strings.ToLower(t.text), t.pos)
				}
				if !p.acceptPunct(")") {
					return nodequery.OutputCol{}, serr(p.cur().pos, "missing ')' after count(* at offset %d", p.cur().pos)
				}
				return nodequery.OutputCol{Agg: nodequery.AggCount, Star: true}, nil
			}
			c, err := p.colref()
			if err != nil {
				return nodequery.OutputCol{}, err
			}
			if !p.acceptPunct(")") {
				return nodequery.OutputCol{}, serr(p.cur().pos, "missing ')' after aggregate argument at offset %d", p.cur().pos)
			}
			return nodequery.OutputCol{Agg: kind, Ref: c}, nil
		}
	}
	c, err := p.colref()
	if err != nil {
		return nodequery.OutputCol{}, err
	}
	return nodequery.OutputCol{Ref: c}, nil
}

// tail parses the optional GROUP BY / ORDER BY / LIMIT clauses, in that
// fixed order.
func (p *parser) tail() (*tailSpec, error) {
	t := &tailSpec{}
	if p.acceptKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			c, err := p.colref()
			if err != nil {
				return nil, err
			}
			t.groupBy = append(t.groupBy, c)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			k := nodequery.OrderKey{Col: item}
			if p.acceptKeyword("desc") {
				k.Desc = true
			} else {
				p.acceptKeyword("asc")
			}
			t.orderBy = append(t.orderBy, k)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("limit") {
		n := p.next()
		if n.kind != tokNumber {
			return nil, serr(n.pos, "limit needs a positive integer, found %s at offset %d", n, n.pos)
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 1 {
			return nil, serr(n.pos, "limit must be a positive integer, got %q at offset %d", n.text, n.pos)
		}
		t.limit = v
	}
	return t, nil
}

// pathClause parses `<source> <PRE> <targetVar>` for the document variable
// docVar and returns the new sub-query it opens.
func (p *parser) pathClause(docVar string) (*subquery, error) {
	sq := &subquery{docVar: docVar}
	t := p.cur()
	switch {
	case t.kind == tokString:
		sq.starts = []string{p.next().text}
	case t.kind == tokPunct && t.text == "(" && p.peek().kind == tokString:
		p.next() // '('
		for {
			st := p.next()
			if st.kind != tokString {
				return nil, serr(st.pos, "expected StartNode URL, found %s at offset %d", st, st.pos)
			}
			sq.starts = append(sq.starts, st.text)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if !p.acceptPunct(")") {
			return nil, serr(p.cur().pos, "missing ')' after StartNode list at offset %d", p.cur().pos)
		}
	case t.kind == tokIdent && strings.EqualFold(t.text, "index") &&
		p.peek().kind == tokPunct && p.peek().text == "(":
		p.next() // index
		p.next() // '('
		term := p.next()
		if term.kind != tokString {
			return nil, serr(term.pos, "index() needs a quoted term, found %s at offset %d", term, term.pos)
		}
		if !p.acceptPunct(")") {
			return nil, serr(p.cur().pos, "missing ')' after index term at offset %d", p.cur().pos)
		}
		sq.startTerm = term.text
	case t.kind == tokIdent && !preSymbols[t.text]:
		sq.srcVar = p.next().text
	default:
		return nil, serr(t.pos, "expected StartNode URL or document variable, found %s at offset %d", t, t.pos)
	}
	// Gather the PRE tokens: everything up to the target variable.
	var parts []string
	for {
		t := p.cur()
		switch {
		case t.kind == tokIdent && preSymbols[t.text]:
			parts = append(parts, p.next().text)
		case t.kind == tokNumber:
			parts = append(parts, p.next().text)
		case t.kind == tokPunct && (t.text == "(" || t.text == ")" || t.text == "|" || t.text == "*" || t.text == "·" || t.text == "."):
			parts = append(parts, p.next().text)
		case t.kind == tokIdent:
			if t.text != docVar {
				return nil, serr(t.pos, "path must end at the declared variable %q, found %s at offset %d", docVar, t, t.pos)
			}
			p.next()
			if len(parts) == 0 {
				return nil, serr(t.pos, "empty PRE in path to %q at offset %d", docVar, t.pos)
			}
			expr, err := pre.Parse(strings.Join(parts, " "))
			if err != nil {
				return nil, serrw(t.pos, err, "bad PRE %q: %v", strings.Join(parts, " "), err)
			}
			sq.pre = expr
			sq.vars = append([]nodequery.VarDecl{{Name: docVar, Rel: "document"}}, sq.vars...)
			return sq, nil
		default:
			return nil, serr(t.pos, "unexpected %s in PRE at offset %d", t, t.pos)
		}
	}
}

func (p *parser) colref() (nodequery.ColRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nodequery.ColRef{}, serr(t.pos, "expected column reference, found %s at offset %d", t, t.pos)
	}
	if !p.acceptPunct(".") {
		return nodequery.ColRef{}, serr(p.cur().pos, "expected '.' after %q at offset %d", t.text, p.cur().pos)
	}
	a := p.next()
	if a.kind != tokIdent {
		return nodequery.ColRef{}, serr(a.pos, "expected attribute name, found %s at offset %d", a, a.pos)
	}
	return nodequery.ColRef{Var: t.text, Col: strings.ToLower(a.text)}, nil
}

func (p *parser) orExpr() (*nodequery.Pred, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []*nodequery.Pred{left}
	for p.acceptKeyword("or") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &nodequery.Pred{Kind: nodequery.Or, Kids: kids}, nil
}

func (p *parser) andExpr() (*nodequery.Pred, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	kids := []*nodequery.Pred{left}
	for p.acceptKeyword("and") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &nodequery.Pred{Kind: nodequery.And, Kids: kids}, nil
}

func (p *parser) notExpr() (*nodequery.Pred, error) {
	if p.acceptKeyword("not") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &nodequery.Pred{Kind: nodequery.Not, Kids: []*nodequery.Pred{inner}}, nil
	}
	if p.acceptPunct("(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptPunct(")") {
			return nil, serr(p.cur().pos, "missing ')' at offset %d", p.cur().pos)
		}
		return inner, nil
	}
	return p.cmp()
}

func (p *parser) cmp() (*nodequery.Pred, error) {
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("contains") {
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return nodequery.Compare(left, nodequery.Contains, right), nil
	}
	if p.isKeyword("not") {
		p.pos++
		if err := p.expectKeyword("contains"); err != nil {
			return nil, err
		}
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return nodequery.Compare(left, nodequery.NotContains, right), nil
	}
	t := p.next()
	if t.kind != tokPunct {
		return nil, serr(t.pos, "expected comparison operator, found %s at offset %d", t, t.pos)
	}
	var op nodequery.CmpOp
	switch t.text {
	case "=":
		op = nodequery.Eq
	case "!=", "<>":
		op = nodequery.Ne
	case "<":
		op = nodequery.Lt
	case "<=":
		op = nodequery.Le
	case ">":
		op = nodequery.Gt
	case ">=":
		op = nodequery.Ge
	default:
		return nil, serr(t.pos, "unknown operator %q at offset %d", t.text, t.pos)
	}
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return nodequery.Compare(left, op, right), nil
}

func (p *parser) operand() (nodequery.Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokString, tokNumber:
		p.pos++
		return nodequery.LitOperand(t.text), nil
	case tokIdent:
		c, err := p.colref()
		if err != nil {
			return nodequery.Operand{}, err
		}
		return nodequery.Operand{IsCol: true, Col: c}, nil
	}
	return nodequery.Operand{}, serr(t.pos, "expected operand, found %s at offset %d", t, t.pos)
}

// assemble chains the parsed sub-queries into a WebQuery, splits the
// select list across stages, and validates + attaches the aggregation
// tail as the query's OutputSpec.
func assemble(subs []*subquery, items []nodequery.OutputCol, tail *tailSpec) (*WebQuery, error) {
	if len(subs) == 0 {
		return nil, serr(-1, "query declares no document variable")
	}
	byVar := make(map[string]int) // variable -> stage index
	for i, sq := range subs {
		if i == 0 {
			if len(sq.starts) == 0 && sq.startTerm == "" {
				return nil, serr(-1, "first path must start from a StartNode URL or index() term, not variable %q", sq.srcVar)
			}
		} else {
			if sq.srcVar == "" {
				return nil, serr(-1, "stage %d must start from the previous document variable, not a URL", i+1)
			}
			if sq.srcVar != subs[i-1].docVar {
				return nil, serr(-1, "stage %d starts from %q; it must chain from the previous document variable %q",
					i+1, sq.srcVar, subs[i-1].docVar)
			}
		}
		for _, v := range sq.vars {
			if prev, dup := byVar[v.Name]; dup {
				return nil, serr(-1, "variable %q declared in both stage %d and stage %d", v.Name, prev+1, i+1)
			}
			byVar[v.Name] = i
		}
	}
	last := len(subs) - 1
	exports := make([]map[string]bool, len(subs))
	for i := range subs {
		exports[i] = make(map[string]bool)
	}

	grouped := len(tail.groupBy) > 0
	for _, c := range items {
		if c.Agg != nodequery.AggNone {
			grouped = true
		}
	}
	for _, k := range tail.orderBy {
		if k.Col.Agg != nodequery.AggNone {
			grouped = true
		}
	}

	var output *nodequery.OutputSpec
	if grouped {
		var err error
		output, err = assembleGrouped(subs, items, tail, byVar, last, exports)
		if err != nil {
			return nil, err
		}
	} else {
		// Classic split: each column goes to the stage declaring its
		// variable, preserving the user's order within each stage.
		for _, c := range items {
			i, ok := byVar[c.Ref.Var]
			if !ok {
				return nil, serr(-1, "select references undeclared variable %q", c.Ref.Var)
			}
			subs[i].selects = append(subs[i].selects, c.Ref)
		}
		if !tail.empty() {
			for _, k := range tail.orderBy {
				if byVar[k.Col.Ref.Var] != last || !selectedIn(items, k.Col.Ref) {
					return nil, serr(-1, "order by column %s must be selected from the final stage (or use group by)", k.Col.Ref)
				}
			}
			output = &nodequery.OutputSpec{OrderBy: tail.orderBy, Limit: tail.limit}
		}
	}

	// Correlated stages (the paper's footnote-2 extension): a later
	// stage's predicates may reference an *earlier* stage's document
	// variable. Such references become the stage's Outer list, and the
	// referenced columns become the earlier stage's Export list, carried
	// downstream in the clone's environment. Group-by keys of earlier
	// stages were already added to exports above.
	outers := make([][]nodequery.ColRef, len(subs))
	docStage := make(map[string]int, len(subs))
	for i, sq := range subs {
		docStage[sq.docVar] = i
	}
	for i, sq := range subs {
		local := make(map[string]bool, len(sq.vars))
		for _, v := range sq.vars {
			local[v.Name] = true
		}
		seen := make(map[string]bool)
		record := func(c nodequery.ColRef) error {
			if local[c.Var] || seen[c.String()] {
				return nil
			}
			j, ok := docStage[c.Var]
			if !ok || j >= i {
				return nil // nodequery.Validate reports undeclared variables
			}
			if !documentCol(c.Col) {
				return serr(-1, "%s: document variable %q (stage %d) has no attribute %q", c, c.Var, j+1, c.Col)
			}
			seen[c.String()] = true
			outers[i] = append(outers[i], c)
			exports[j][c.Col] = true
			return nil
		}
		preds := []*nodequery.Pred{sq.where}
		for _, v := range sq.vars {
			preds = append(preds, v.Cond)
		}
		for _, p := range preds {
			if err := walkColRefs(p, record); err != nil {
				return nil, err
			}
		}
	}

	w := &WebQuery{Start: subs[0].starts, StartTerm: subs[0].startTerm, Output: output}
	for i, sq := range subs {
		var export []string
		for col := range exports[i] {
			export = append(export, col)
		}
		sort.Strings(export)
		w.Stages = append(w.Stages, Stage{
			PRE:    sq.pre,
			Export: export,
			Query: &nodequery.Query{
				Vars:   sq.vars,
				Where:  sq.where,
				Select: sq.selects,
				Outer:  outers[i],
			},
		})
	}
	return w, nil
}

// assembleGrouped validates an aggregated query and derives the base
// (pre-aggregation) select list of each stage: the final stage projects
// every final-stage group key and every aggregate argument, earlier
// stages project their plain select items and export their group keys
// through the clone environment.
func assembleGrouped(subs []*subquery, items []nodequery.OutputCol, tail *tailSpec,
	byVar map[string]int, last int, exports []map[string]bool) (*nodequery.OutputSpec, error) {
	inGroup := func(r nodequery.ColRef) bool {
		for _, g := range tail.groupBy {
			if g == r {
				return true
			}
		}
		return false
	}
	for _, c := range items {
		if c.Agg == nodequery.AggNone && !inGroup(c.Ref) {
			return nil, serr(-1, "column %s must appear in the group by clause", c.Ref)
		}
	}
	for _, k := range tail.orderBy {
		if k.Col.Agg == nodequery.AggNone && !inGroup(k.Col.Ref) {
			return nil, serr(-1, "order by column %s is not grouped", k.Col.Ref)
		}
	}
	var base []nodequery.ColRef // final-stage pre-aggregation projection
	baseSeen := make(map[string]bool)
	addBase := func(r nodequery.ColRef) {
		if !baseSeen[r.String()] {
			baseSeen[r.String()] = true
			base = append(base, r)
		}
	}
	// Plain select items keep the classic per-stage split so earlier
	// stages still report their columns.
	for _, c := range items {
		if c.Agg != nodequery.AggNone {
			continue
		}
		i, ok := byVar[c.Ref.Var]
		if !ok {
			return nil, serr(-1, "select references undeclared variable %q", c.Ref.Var)
		}
		if i == last {
			addBase(c.Ref)
		} else {
			subs[i].selects = append(subs[i].selects, c.Ref)
		}
	}
	for _, g := range tail.groupBy {
		i, ok := byVar[g.Var]
		if !ok {
			return nil, serr(-1, "group by references undeclared variable %q", g.Var)
		}
		if i == last {
			addBase(g)
			continue
		}
		if subs[i].docVar != g.Var {
			return nil, serr(-1, "group by %s references non-document variable %q of an earlier stage", g, g.Var)
		}
		if !documentCol(g.Col) {
			return nil, serr(-1, "%s: document variable %q (stage %d) has no attribute %q", g, g.Var, i+1, g.Col)
		}
		exports[i][g.Col] = true
	}
	aggArg := func(c nodequery.OutputCol) error {
		if c.Agg == nodequery.AggNone || c.Star {
			return nil
		}
		i, ok := byVar[c.Ref.Var]
		if !ok {
			return serr(-1, "aggregate %s references undeclared variable %q", c, c.Ref.Var)
		}
		if i != last {
			return serr(-1, "aggregate %s must reference a variable of the final stage (stage %d)", c, last+1)
		}
		addBase(c.Ref)
		return nil
	}
	for _, c := range items {
		if err := aggArg(c); err != nil {
			return nil, err
		}
	}
	for _, k := range tail.orderBy {
		if err := aggArg(k.Col); err != nil {
			return nil, err
		}
	}
	if len(base) == 0 {
		// Pure count(*) over earlier-stage groups: ship a hidden column so
		// every matching node contributes distinct rows to count.
		base = []nodequery.ColRef{{Var: subs[last].docVar, Col: "url"}}
	}
	subs[last].selects = append(subs[last].selects, base...)
	return &nodequery.OutputSpec{
		Cols:    items,
		GroupBy: tail.groupBy,
		OrderBy: tail.orderBy,
		Limit:   tail.limit,
	}, nil
}

func selectedIn(items []nodequery.OutputCol, r nodequery.ColRef) bool {
	for _, c := range items {
		if c.Agg == nodequery.AggNone && c.Ref == r {
			return true
		}
	}
	return false
}

// documentCol reports whether col is an attribute of the DOCUMENT virtual
// relation (the only relation whose values may cross stages: it has
// exactly one tuple per node, so the binding is single-valued).
func documentCol(col string) bool {
	for _, c := range relmodel.Schemas[relmodel.RelDocument] {
		if c == col {
			return true
		}
	}
	return false
}

// walkColRefs invokes fn on every column reference of a predicate tree.
func walkColRefs(p *nodequery.Pred, fn func(nodequery.ColRef) error) error {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case nodequery.Cmp:
		if p.Left.IsCol {
			if err := fn(p.Left.Col); err != nil {
				return err
			}
		}
		if p.Right.IsCol {
			if err := fn(p.Right.Col); err != nil {
				return err
			}
		}
	case nodequery.And, nodequery.Or, nodequery.Not:
		for _, k := range p.Kids {
			if err := walkColRefs(k, fn); err != nil {
				return err
			}
		}
	}
	return nil
}
