package disql

import (
	"fmt"
	"sort"
	"strings"

	"webdis/internal/nodequery"
	"webdis/internal/pre"
	"webdis/internal/relmodel"
)

// Parse translates a DISQL query into the formal web-query. The grammar
// (reconstructed from the paper's examples and the DISCOVER thesis it
// cites) is:
//
//	query      := SELECT colref (',' colref)* FROM item+
//	item       := WHERE orExpr
//	           |  relname var [SUCH THAT suchclause]  [',']
//	relname    := DOCUMENT | ANCHOR | RELINFON
//	suchclause := pathclause | orExpr
//	pathclause := source PRE var
//	source     := string | '(' string (',' string)* ')' | var
//	orExpr     := andExpr (OR andExpr)*
//	andExpr    := notExpr (AND notExpr)*
//	notExpr    := NOT notExpr | '(' orExpr ')' | cmp
//	cmp        := operand ('='|'!='|'<>'|'<'|'<='|'>'|'>='|CONTAINS|NOT CONTAINS) operand
//	operand    := string | number | colref
//	colref     := var '.' attr
//
// Every `document d such that <source> <PRE> d` clause opens a new
// sub-query (one stage of the web-query); the source of the first stage is
// the StartNode URL set, and the source of each later stage must be the
// document variable of the immediately preceding stage (the paper's
// query-forwarding chain). A WHERE item attaches to the sub-query that is
// open when it appears. The select list is split across stages by the
// variables it references (paper Section 2.3).
func Parse(src string) (*WebQuery, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	w, err := p.query()
	if err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// MustParse is Parse, panicking on error; for tests and fixed queries.
func MustParse(src string) *WebQuery {
	w, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return w
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("disql: expected %q, found %s at offset %d", kw, p.cur(), p.cur().pos)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	t := p.cur()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

// subquery accumulates one stage while parsing.
type subquery struct {
	pre       pre.Expr
	docVar    string
	srcVar    string   // document variable of the previous stage, or ""
	starts    []string // StartNode URLs (first stage only)
	startTerm string   // index("term") source (first stage only)
	vars      []nodequery.VarDecl
	where     *nodequery.Pred
	selects   []nodequery.ColRef
}

var relNames = map[string]bool{"document": true, "anchor": true, "relinfon": true}
var preSymbols = map[string]bool{"I": true, "L": true, "G": true, "N": true}

func (p *parser) query() (*WebQuery, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	var selects []nodequery.ColRef
	for {
		c, err := p.colref()
		if err != nil {
			return nil, err
		}
		selects = append(selects, c)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	var subs []*subquery
	current := func() *subquery {
		if len(subs) == 0 {
			return nil
		}
		return subs[len(subs)-1]
	}
	for p.cur().kind != tokEOF {
		if p.acceptPunct(",") {
			continue
		}
		if p.acceptKeyword("where") {
			pred, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			sq := current()
			if sq == nil {
				return nil, fmt.Errorf("disql: where clause before any relation declaration")
			}
			sq.where = nodequery.Conj(sq.where, pred)
			continue
		}
		t := p.cur()
		if t.kind != tokIdent || !relNames[strings.ToLower(t.text)] {
			return nil, fmt.Errorf("disql: expected relation name or where, found %s at offset %d", t, t.pos)
		}
		rel := strings.ToLower(p.next().text)
		nameTok := p.next()
		if nameTok.kind != tokIdent {
			return nil, fmt.Errorf("disql: expected variable name after %q, found %s at offset %d", rel, nameTok, nameTok.pos)
		}
		name := nameTok.text
		if preSymbols[name] || relNames[strings.ToLower(name)] || strings.EqualFold(name, "index") {
			return nil, fmt.Errorf("disql: %q cannot be used as a variable name at offset %d", name, nameTok.pos)
		}
		hasSuch := false
		if p.acceptKeyword("such") {
			if err := p.expectKeyword("that"); err != nil {
				return nil, err
			}
			hasSuch = true
		}
		if rel == "document" {
			if !hasSuch {
				return nil, fmt.Errorf("disql: document variable %q needs a `such that <path>` clause at offset %d", name, nameTok.pos)
			}
			sq, err := p.pathClause(name)
			if err != nil {
				return nil, err
			}
			subs = append(subs, sq)
			continue
		}
		sq := current()
		if sq == nil {
			return nil, fmt.Errorf("disql: %s variable %q declared before any document variable", rel, name)
		}
		decl := nodequery.VarDecl{Name: name, Rel: rel}
		if hasSuch {
			pred, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			decl.Cond = pred
		}
		sq.vars = append(sq.vars, decl)
	}
	return assemble(subs, selects)
}

// pathClause parses `<source> <PRE> <targetVar>` for the document variable
// docVar and returns the new sub-query it opens.
func (p *parser) pathClause(docVar string) (*subquery, error) {
	sq := &subquery{docVar: docVar}
	t := p.cur()
	switch {
	case t.kind == tokString:
		sq.starts = []string{p.next().text}
	case t.kind == tokPunct && t.text == "(" && p.toks[p.pos+1].kind == tokString:
		p.next() // '('
		for {
			st := p.next()
			if st.kind != tokString {
				return nil, fmt.Errorf("disql: expected StartNode URL, found %s at offset %d", st, st.pos)
			}
			sq.starts = append(sq.starts, st.text)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if !p.acceptPunct(")") {
			return nil, fmt.Errorf("disql: missing ')' after StartNode list at offset %d", p.cur().pos)
		}
	case t.kind == tokIdent && strings.EqualFold(t.text, "index") &&
		p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(":
		p.next() // index
		p.next() // '('
		term := p.next()
		if term.kind != tokString {
			return nil, fmt.Errorf("disql: index() needs a quoted term, found %s at offset %d", term, term.pos)
		}
		if !p.acceptPunct(")") {
			return nil, fmt.Errorf("disql: missing ')' after index term at offset %d", p.cur().pos)
		}
		sq.startTerm = term.text
	case t.kind == tokIdent && !preSymbols[t.text]:
		sq.srcVar = p.next().text
	default:
		return nil, fmt.Errorf("disql: expected StartNode URL or document variable, found %s at offset %d", t, t.pos)
	}
	// Gather the PRE tokens: everything up to the target variable.
	var parts []string
	for {
		t := p.cur()
		switch {
		case t.kind == tokIdent && preSymbols[t.text]:
			parts = append(parts, p.next().text)
		case t.kind == tokNumber:
			parts = append(parts, p.next().text)
		case t.kind == tokPunct && (t.text == "(" || t.text == ")" || t.text == "|" || t.text == "*" || t.text == "·" || t.text == "."):
			parts = append(parts, p.next().text)
		case t.kind == tokIdent:
			if t.text != docVar {
				return nil, fmt.Errorf("disql: path must end at the declared variable %q, found %s at offset %d", docVar, t, t.pos)
			}
			p.next()
			if len(parts) == 0 {
				return nil, fmt.Errorf("disql: empty PRE in path to %q at offset %d", docVar, t.pos)
			}
			expr, err := pre.Parse(strings.Join(parts, " "))
			if err != nil {
				return nil, fmt.Errorf("disql: bad PRE %q: %w", strings.Join(parts, " "), err)
			}
			sq.pre = expr
			sq.vars = append([]nodequery.VarDecl{{Name: docVar, Rel: "document"}}, sq.vars...)
			return sq, nil
		default:
			return nil, fmt.Errorf("disql: unexpected %s in PRE at offset %d", t, t.pos)
		}
	}
}

func (p *parser) colref() (nodequery.ColRef, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nodequery.ColRef{}, fmt.Errorf("disql: expected column reference, found %s at offset %d", t, t.pos)
	}
	if !p.acceptPunct(".") {
		return nodequery.ColRef{}, fmt.Errorf("disql: expected '.' after %q at offset %d", t.text, p.cur().pos)
	}
	a := p.next()
	if a.kind != tokIdent {
		return nodequery.ColRef{}, fmt.Errorf("disql: expected attribute name, found %s at offset %d", a, a.pos)
	}
	return nodequery.ColRef{Var: t.text, Col: strings.ToLower(a.text)}, nil
}

func (p *parser) orExpr() (*nodequery.Pred, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []*nodequery.Pred{left}
	for p.acceptKeyword("or") {
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &nodequery.Pred{Kind: nodequery.Or, Kids: kids}, nil
}

func (p *parser) andExpr() (*nodequery.Pred, error) {
	left, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	kids := []*nodequery.Pred{left}
	for p.acceptKeyword("and") {
		right, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &nodequery.Pred{Kind: nodequery.And, Kids: kids}, nil
}

func (p *parser) notExpr() (*nodequery.Pred, error) {
	if p.acceptKeyword("not") {
		inner, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &nodequery.Pred{Kind: nodequery.Not, Kids: []*nodequery.Pred{inner}}, nil
	}
	if p.acceptPunct("(") {
		inner, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if !p.acceptPunct(")") {
			return nil, fmt.Errorf("disql: missing ')' at offset %d", p.cur().pos)
		}
		return inner, nil
	}
	return p.cmp()
}

func (p *parser) cmp() (*nodequery.Pred, error) {
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("contains") {
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return nodequery.Compare(left, nodequery.Contains, right), nil
	}
	if p.isKeyword("not") {
		p.pos++
		if err := p.expectKeyword("contains"); err != nil {
			return nil, err
		}
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return nodequery.Compare(left, nodequery.NotContains, right), nil
	}
	t := p.next()
	if t.kind != tokPunct {
		return nil, fmt.Errorf("disql: expected comparison operator, found %s at offset %d", t, t.pos)
	}
	var op nodequery.CmpOp
	switch t.text {
	case "=":
		op = nodequery.Eq
	case "!=", "<>":
		op = nodequery.Ne
	case "<":
		op = nodequery.Lt
	case "<=":
		op = nodequery.Le
	case ">":
		op = nodequery.Gt
	case ">=":
		op = nodequery.Ge
	default:
		return nil, fmt.Errorf("disql: unknown operator %q at offset %d", t.text, t.pos)
	}
	right, err := p.operand()
	if err != nil {
		return nil, err
	}
	return nodequery.Compare(left, op, right), nil
}

func (p *parser) operand() (nodequery.Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokString, tokNumber:
		p.pos++
		return nodequery.LitOperand(t.text), nil
	case tokIdent:
		c, err := p.colref()
		if err != nil {
			return nodequery.Operand{}, err
		}
		return nodequery.Operand{IsCol: true, Col: c}, nil
	}
	return nodequery.Operand{}, fmt.Errorf("disql: expected operand, found %s at offset %d", t, t.pos)
}

// assemble chains the parsed sub-queries into a WebQuery and splits the
// select list across stages.
func assemble(subs []*subquery, selects []nodequery.ColRef) (*WebQuery, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("disql: query declares no document variable")
	}
	byVar := make(map[string]int) // variable -> stage index
	for i, sq := range subs {
		if i == 0 {
			if len(sq.starts) == 0 && sq.startTerm == "" {
				return nil, fmt.Errorf("disql: first path must start from a StartNode URL or index() term, not variable %q", sq.srcVar)
			}
		} else {
			if sq.srcVar == "" {
				return nil, fmt.Errorf("disql: stage %d must start from the previous document variable, not a URL", i+1)
			}
			if sq.srcVar != subs[i-1].docVar {
				return nil, fmt.Errorf("disql: stage %d starts from %q; it must chain from the previous document variable %q",
					i+1, sq.srcVar, subs[i-1].docVar)
			}
		}
		for _, v := range sq.vars {
			if prev, dup := byVar[v.Name]; dup {
				return nil, fmt.Errorf("disql: variable %q declared in both stage %d and stage %d", v.Name, prev+1, i+1)
			}
			byVar[v.Name] = i
		}
	}
	// Split the select list: each column goes to the stage declaring its
	// variable, preserving the user's order within each stage.
	for _, c := range selects {
		i, ok := byVar[c.Var]
		if !ok {
			return nil, fmt.Errorf("disql: select references undeclared variable %q", c.Var)
		}
		subs[i].selects = append(subs[i].selects, c)
	}
	// Correlated stages (the paper's footnote-2 extension): a later
	// stage's predicates may reference an *earlier* stage's document
	// variable. Such references become the stage's Outer list, and the
	// referenced columns become the earlier stage's Export list, carried
	// downstream in the clone's environment.
	exports := make([]map[string]bool, len(subs))
	outers := make([][]nodequery.ColRef, len(subs))
	for i := range subs {
		exports[i] = make(map[string]bool)
	}
	docStage := make(map[string]int, len(subs))
	for i, sq := range subs {
		docStage[sq.docVar] = i
	}
	for i, sq := range subs {
		local := make(map[string]bool, len(sq.vars))
		for _, v := range sq.vars {
			local[v.Name] = true
		}
		seen := make(map[string]bool)
		record := func(c nodequery.ColRef) error {
			if local[c.Var] || seen[c.String()] {
				return nil
			}
			j, ok := docStage[c.Var]
			if !ok || j >= i {
				return nil // nodequery.Validate reports undeclared variables
			}
			if !documentCol(c.Col) {
				return fmt.Errorf("disql: %s: document variable %q (stage %d) has no attribute %q", c, c.Var, j+1, c.Col)
			}
			seen[c.String()] = true
			outers[i] = append(outers[i], c)
			exports[j][c.Col] = true
			return nil
		}
		preds := []*nodequery.Pred{sq.where}
		for _, v := range sq.vars {
			preds = append(preds, v.Cond)
		}
		for _, p := range preds {
			if err := walkColRefs(p, record); err != nil {
				return nil, err
			}
		}
	}

	w := &WebQuery{Start: subs[0].starts, StartTerm: subs[0].startTerm}
	for i, sq := range subs {
		var export []string
		for col := range exports[i] {
			export = append(export, col)
		}
		sort.Strings(export)
		w.Stages = append(w.Stages, Stage{
			PRE:    sq.pre,
			Export: export,
			Query: &nodequery.Query{
				Vars:   sq.vars,
				Where:  sq.where,
				Select: sq.selects,
				Outer:  outers[i],
			},
		})
	}
	return w, nil
}

// documentCol reports whether col is an attribute of the DOCUMENT virtual
// relation (the only relation whose values may cross stages: it has
// exactly one tuple per node, so the binding is single-valued).
func documentCol(col string) bool {
	for _, c := range relmodel.Schemas[relmodel.RelDocument] {
		if c == col {
			return true
		}
	}
	return false
}

// walkColRefs invokes fn on every column reference of a predicate tree.
func walkColRefs(p *nodequery.Pred, fn func(nodequery.ColRef) error) error {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case nodequery.Cmp:
		if p.Left.IsCol {
			if err := fn(p.Left.Col); err != nil {
				return err
			}
		}
		if p.Right.IsCol {
			if err := fn(p.Right.Col); err != nil {
				return err
			}
		}
	case nodequery.And, nodequery.Or, nodequery.Not:
		for _, k := range p.Kids {
			if err := walkColRefs(k, fn); err != nil {
				return err
			}
		}
	}
	return nil
}
