// Package disql implements DISQL, the SQL-like declarative query language
// of the WEBDIS system (paper Section 2.3), and its translation into the
// formal web-query Q = S p1 q1 p2 q2 … pn qn. A DISQL query is a single
// select clause followed by a sequence of sub-queries; each sub-query
// declares one document variable reached through a Path Regular Expression
// (PRE) plus any number of anchor/relinfon variables, and maps to one
// (PRE, node-query) stage of the web-query. The original system generated
// its parser with JavaCC; this one is a hand-written lexer and recursive
// descent parser.
package disql

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokPunct // one of , . ( ) = | * · < > ! and the two-char <= >= != <>
)

type token struct {
	kind tokenKind
	text string // identifier (original case), string value, number, or punct
	pos  int    // byte offset, for error messages
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of query"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes an entire DISQL query. String literals are double-quoted
// with backslash escapes; -- starts a comment through end of line.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case strings.HasPrefix(src[i:], "·"):
			toks = append(toks, token{tokPunct, "·", i})
			i += len("·")
		case c == '"':
			start := i
			i++
			var b strings.Builder
			for i < n && src[i] != '"' {
				if src[i] == '\\' && i+1 < n {
					i++
				}
				b.WriteByte(src[i])
				i++
			}
			if i >= n {
				return nil, serr(start, "unterminated string at offset %d", start)
			}
			i++
			toks = append(toks, token{tokString, b.String(), start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentChar(rune(src[i])) {
				i++
			}
			toks = append(toks, token{tokIdent, src[start:i], start})
		case c >= '0' && c <= '9':
			start := i
			for i < n && src[i] >= '0' && src[i] <= '9' {
				i++
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		default:
			start := i
			// two-character operators
			if i+1 < n {
				two := src[i : i+2]
				switch two {
				case "<=", ">=", "!=", "<>":
					toks = append(toks, token{tokPunct, two, start})
					i += 2
					continue
				}
			}
			switch c {
			case ',', '.', '(', ')', '=', '|', '*', '<', '>':
				toks = append(toks, token{tokPunct, string(c), start})
				i++
			default:
				return nil, serr(i, "unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// Identifiers are ASCII: anything beyond ASCII would be scanned bytewise
// and could split multi-byte runes such as the · operator.
func isIdentStart(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
}

func isIdentChar(r rune) bool {
	return isIdentStart(r) || r >= '0' && r <= '9'
}
