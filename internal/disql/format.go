package disql

import (
	"fmt"
	"strconv"
	"strings"

	"webdis/internal/nodequery"
)

// Format renders a web-query back into canonical DISQL text. The output
// always re-parses to an equivalent web-query (Parse(Format(w)) yields
// the same stages, PREs and predicates), which the round-trip tests
// assert; it is used by tools that manipulate queries programmatically
// and want to ship or display them as DISQL.
//
// The formal object does not retain the user's variable names for the
// path chain, so document variables are printed as d0, d1, …; anchor and
// relinfon variables keep their parsed names (they are stored in the
// node-queries).
func Format(w *WebQuery) string {
	var b strings.Builder
	b.WriteString("select ")
	first := true
	if w.Output != nil && len(w.Output.Cols) > 0 {
		// Aggregated query: the user's select list lives in the output
		// spec; the per-stage Select lists are the derived base
		// projections (group keys + aggregate arguments) and are
		// reconstructed by the parser, so they are not printed.
		for _, c := range w.Output.Cols {
			if !first {
				b.WriteString(", ")
			}
			first = false
			b.WriteString(c.String())
		}
	} else {
		for _, s := range w.Stages {
			for _, c := range s.Query.Select {
				if !first {
					b.WriteString(", ")
				}
				first = false
				b.WriteString(c.String())
			}
		}
	}
	if first {
		// A web-query always projects something somewhere; Validate
		// guarantees stages exist, but guard empty selects anyway.
		b.WriteString("d0.url")
	}
	b.WriteString("\nfrom ")
	for i, s := range w.Stages {
		docVar := s.Query.Vars[0].Name
		if i == 0 {
			source := quoteList(w.Start)
			if w.StartTerm != "" {
				source = fmt.Sprintf("index(%s)", strconv.Quote(w.StartTerm))
			}
			fmt.Fprintf(&b, "document %s such that %s %s %s", docVar, source, s.PRE, docVar)
		} else {
			prev := w.Stages[i-1].Query.Vars[0].Name
			fmt.Fprintf(&b, "     document %s such that %s %s %s", docVar, prev, s.PRE, docVar)
		}
		for _, v := range s.Query.Vars[1:] {
			b.WriteString(",\n     ")
			fmt.Fprintf(&b, "%s %s", v.Rel, v.Name)
			if v.Cond != nil && v.Cond.Kind != nodequery.True {
				fmt.Fprintf(&b, " such that %s", formatPred(v.Cond))
			}
		}
		if s.Query.Where != nil && s.Query.Where.Kind != nodequery.True {
			fmt.Fprintf(&b, "\nwhere %s", formatPred(s.Query.Where))
		}
		if i < len(w.Stages)-1 {
			b.WriteString(",\n")
		}
	}
	b.WriteString(w.Output.Suffix())
	return b.String()
}

func quoteList(urls []string) string {
	if len(urls) == 1 {
		return strconv.Quote(urls[0])
	}
	quoted := make([]string, len(urls))
	for i, u := range urls {
		quoted[i] = strconv.Quote(u)
	}
	return "(" + strings.Join(quoted, ", ") + ")"
}

// formatPred renders a predicate in DISQL's condition syntax. It differs
// from Pred.String only in parenthesization details; both re-parse.
func formatPred(p *nodequery.Pred) string {
	return p.String()
}
