package disql

import "fmt"

// SyntaxError is the typed error every DISQL lex/parse/assembly failure
// returns (errors.As-matchable). Offset is the byte position in the
// source where the failure was detected, or -1 when the error concerns
// the query as a whole rather than one token.
type SyntaxError struct {
	Offset int
	Msg    string // complete human-readable message, "disql: …"
	Err    error  // wrapped cause (e.g. a PRE parse error), or nil
}

func (e *SyntaxError) Error() string { return e.Msg }

func (e *SyntaxError) Unwrap() error { return e.Err }

// serr builds a SyntaxError at a byte offset.
func serr(off int, format string, args ...any) error {
	return &SyntaxError{Offset: off, Msg: "disql: " + fmt.Sprintf(format, args...)}
}

// serrw is serr with a wrapped cause.
func serrw(off int, err error, format string, args ...any) error {
	return &SyntaxError{Offset: off, Msg: "disql: " + fmt.Sprintf(format, args...), Err: err}
}
