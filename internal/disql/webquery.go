package disql

import (
	"fmt"
	"strings"

	"webdis/internal/nodequery"
	"webdis/internal/pre"
)

// Stage is one (PRE, node-query) pair of a web-query: traverse paths
// matching PRE, then evaluate Query at the nodes reached.
//
// Export lists the columns of this stage's document variable that later
// stages' predicates reference (the correlated-stage extension): when the
// stage's node-query succeeds and the query advances, those values are
// copied into the clone's environment and travel with it.
type Stage struct {
	PRE    pre.Expr
	Query  *nodequery.Query
	Export []string
}

// WebQuery is the formal query object of the paper, Q = S p1 q1 … pn qn:
// a set of StartNodes and a sequence of stages. Clones of the WebQuery
// migrate from site to site; each clone tracks which stage it is in and
// how much of that stage's PRE remains.
//
// The StartNodes come either from explicit URLs (Start) or from a
// search-index term (StartTerm, the `index("…")` source) which the
// user-site resolves against its search index before dispatch — the
// paper's Section 1.1 "obtained from existing search-indices" path.
// Exactly one of the two is set.
type WebQuery struct {
	Start     []string // StartNode URLs
	StartTerm string   // search-index term resolving to the StartNodes
	Stages    []Stage

	// Output is the aggregation/ordering contract applied at the
	// user-site over the merged results (GROUP BY / ORDER BY / LIMIT and
	// aggregate select items). nil for classic queries: the per-stage
	// result tables are the final answer, sorted for display.
	Output *nodequery.OutputSpec
}

// NumQ returns the number of node-queries (the initial num_q of the CHT
// protocol's query state).
func (w *WebQuery) NumQ() int { return len(w.Stages) }

// String renders the formalism compactly, e.g.
// "Q = {url} L q1 G·L*1 q2" (node-queries abbreviated by position).
func (w *WebQuery) String() string {
	var b strings.Builder
	b.WriteString("Q = {")
	if w.StartTerm != "" {
		fmt.Fprintf(&b, "index(%q)", w.StartTerm)
	} else {
		b.WriteString(strings.Join(w.Start, ", "))
	}
	b.WriteString("}")
	for i, s := range w.Stages {
		fmt.Fprintf(&b, " %s q%d", s.PRE, i+1)
	}
	if suffix := w.Output.Suffix(); suffix != "" {
		b.WriteString(strings.ReplaceAll(suffix, "\n", " "))
	}
	return b.String()
}

// Validate checks every stage for internal consistency.
func (w *WebQuery) Validate() error {
	if len(w.Start) == 0 && w.StartTerm == "" {
		return fmt.Errorf("disql: web-query has no StartNodes")
	}
	if len(w.Start) > 0 && w.StartTerm != "" {
		return fmt.Errorf("disql: web-query has both explicit StartNodes and an index term")
	}
	if len(w.Stages) == 0 {
		return fmt.Errorf("disql: web-query has no node-queries")
	}
	for i, s := range w.Stages {
		if s.PRE == nil {
			return fmt.Errorf("disql: stage %d has no PRE", i+1)
		}
		if s.Query == nil {
			return fmt.Errorf("disql: stage %d has no node-query", i+1)
		}
		if err := s.Query.Validate(); err != nil {
			return fmt.Errorf("disql: stage %d: %w", i+1, err)
		}
	}
	if w.Output != nil {
		if w.Output.Limit < 0 {
			return fmt.Errorf("disql: negative limit %d", w.Output.Limit)
		}
		if w.Output.Grouped() && len(w.Output.Cols) == 0 {
			return fmt.Errorf("disql: grouped query has an empty select list")
		}
	}
	return nil
}
