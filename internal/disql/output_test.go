package disql

import (
	"errors"
	"strings"
	"testing"

	"webdis/internal/nodequery"
)

// groupedQuery exercises the full PR-7 grammar: aggregates, group by,
// aggregate order-by with direction, and a limit.
const groupedQuery = `
select d.url, count(a.href), max(a.label)
from document d such that "http://start.example/" N|(L*2) d,
     anchor a
where a.ltype = "G"
group by d.url
order by count(a.href) desc, d.url
limit 5
`

func TestParseGroupBy(t *testing.T) {
	w, err := Parse(groupedQuery)
	if err != nil {
		t.Fatal(err)
	}
	o := w.Output
	if o == nil {
		t.Fatal("grouped query has nil Output")
	}
	if len(o.Cols) != 3 {
		t.Fatalf("Cols = %v", o.Cols)
	}
	if o.Cols[0].Agg != nodequery.AggNone || o.Cols[0].Ref.String() != "d.url" {
		t.Errorf("col 0 = %v", o.Cols[0])
	}
	if o.Cols[1].Agg != nodequery.AggCount || o.Cols[1].Ref.String() != "a.href" {
		t.Errorf("col 1 = %v", o.Cols[1])
	}
	if o.Cols[2].Agg != nodequery.AggMax {
		t.Errorf("col 2 = %v", o.Cols[2])
	}
	if len(o.GroupBy) != 1 || o.GroupBy[0].String() != "d.url" {
		t.Errorf("GroupBy = %v", o.GroupBy)
	}
	if len(o.OrderBy) != 2 || !o.OrderBy[0].Desc || o.OrderBy[0].Col.Agg != nodequery.AggCount ||
		o.OrderBy[1].Desc {
		t.Errorf("OrderBy = %v", o.OrderBy)
	}
	if o.Limit != 5 {
		t.Errorf("Limit = %d", o.Limit)
	}
	if !o.Grouped() {
		t.Error("Grouped() = false")
	}
	// The final stage's base projection must feed every group key and
	// aggregate argument.
	sel := w.Stages[0].Query.Select
	want := map[string]bool{"d.url": true, "a.href": true, "a.label": true}
	for _, c := range sel {
		delete(want, c.String())
	}
	if len(want) != 0 {
		t.Errorf("final-stage base projection %v missing %v", sel, want)
	}
}

func TestParseCountStar(t *testing.T) {
	w, err := Parse(`select count(*) from document d such that "http://s/" L* d where d.text contains "x"`)
	if err != nil {
		t.Fatal(err)
	}
	if w.Output == nil || len(w.Output.Cols) != 1 || !w.Output.Cols[0].Star {
		t.Fatalf("Output = %+v", w.Output)
	}
	if !w.Output.Grouped() {
		t.Error("count(*) must be grouped (scalar aggregate)")
	}
}

func TestParseOrderByLimitPlain(t *testing.T) {
	// No aggregates: classic per-stage tables, plus final ordering.
	w, err := Parse(`select d.url, d.length from document d such that "http://s/" L* d
		order by d.length desc limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	o := w.Output
	if o == nil || o.Grouped() {
		t.Fatalf("plain order-by must not be grouped: %+v", o)
	}
	if len(o.OrderBy) != 1 || !o.OrderBy[0].Desc || o.Limit != 3 {
		t.Fatalf("Output = %+v", o)
	}
	// Stage select list keeps the classic split.
	if got := len(w.Stages[0].Query.Select); got != 2 {
		t.Fatalf("stage selects = %v", w.Stages[0].Query.Select)
	}
}

func TestParseTwoVariableJoin(t *testing.T) {
	w, err := Parse(`select a.href, b.href
		from document d such that "http://s/" L* d, anchor a, anchor b
		where a.label = b.label and a.href != b.href`)
	if err != nil {
		t.Fatal(err)
	}
	q := w.Stages[0].Query
	if len(q.Vars) != 3 {
		t.Fatalf("vars = %+v", q.Vars)
	}
	p := q.Where
	if p.Kind != nodequery.And {
		t.Fatalf("where = %s", p)
	}
	eq := p.Kids[0]
	if eq.Op != nodequery.Eq || !eq.Left.IsCol || !eq.Right.IsCol {
		t.Fatalf("join predicate = %s", eq)
	}
}

func TestParseGroupByEarlierStage(t *testing.T) {
	// Grouping the final stage's aggregates by an earlier stage's
	// document attribute: the key exports through the clone environment.
	w, err := Parse(`select d0.url, count(a.href)
		from document d0 such that "http://s/" L d0,
		where d0.title contains "lab"
		     document d1 such that d0 G d1,
		     anchor a
		group by d0.url`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, col := range w.Stages[0].Export {
		if col == "url" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stage 0 Export = %v, want url (group key travels in env)", w.Stages[0].Export)
	}
}

// TestParseOutputErrors is the malformed-clause table: every case must
// produce a typed *SyntaxError (never a panic) with a telling message.
func TestParseOutputErrors(t *testing.T) {
	const stem = `select d.url from document d such that "http://s/" L* d`
	cases := []struct {
		src  string
		frag string
	}{
		// aggregate call syntax
		{`select sum(*) from document d such that "http://s/" L* d`, "only count may aggregate over *"},
		{`select count(* from document d such that "http://s/" L* d`, "missing ')' after count(*"},
		{`select count(d.url from document d such that "http://s/" L* d`, "missing ')' after aggregate argument"},
		{`select count( from document d such that "http://s/" L* d`, "expected '.'"},
		{`select min(d.url), d.title from document d such that "http://s/" L* d`, "must appear in the group by clause"},
		{`select avg(d.length) from document d such that "http://s/" L* d`, "expected '.' after"},
		// group by
		{stem + ` group d.url`, `expected "by"`},
		{stem + ` group by`, "expected column reference"},
		{stem + ` group by d.`, "expected attribute name"},
		{`select count(a.href) from document d such that "http://s/" L d, anchor a group by x.url`, "references undeclared variable"},
		{`select count(a.href) from document d such that "http://s/" L d, anchor a group by a.label, anchor b`, "expected '.'"},
		// order by
		{stem + ` order d.url`, `expected "by"`},
		{stem + ` order by`, "expected column reference"},
		{stem + ` order by d.title`, "must be selected from the final stage"},
		{stem + ` group by d.url order by d.title`, "order by column d.title is not grouped"},
		// limit
		{stem + ` limit`, "limit needs a positive integer"},
		{stem + ` limit zero`, "limit needs a positive integer"},
		{stem + ` limit 0`, "limit must be a positive integer"},
		{stem + ` limit -3`, "unexpected character"},
		{stem + ` limit 2 limit 3`, "unexpected"},
		// clause order is fixed: group by < order by < limit
		{stem + ` limit 2 order by d.url`, "unexpected"},
		{stem + ` order by d.url group by d.url`, "unexpected"},
		// aggregates bind to the final stage
		{`select count(d0.url) from document d0 such that "http://s/" L d0, where d0.title contains "x" document d1 such that d0 G d1`,
			"must reference a variable of the final stage"},
		{`select count(a.href) from document d such that "http://s/" L d, anchor a group by a.nosuch`, "no attribute"},
	}
	for _, c := range cases {
		w, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) = %v, want error containing %q", c.src, w, c.frag)
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("Parse(%q) error is %T, want *SyntaxError", c.src, err)
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestFormatRoundTripOutput(t *testing.T) {
	srcs := []string{
		groupedQuery,
		`select count(*) from document d such that "http://s/" L* d`,
		`select d.url from document d such that "http://s/" G|L d order by d.url desc limit 7`,
		`select a.label, min(a.href), max(a.href) from document d such that "http://s/" L* d, anchor a group by a.label order by a.label`,
		`select a.href, b.href from document d such that "http://s/" L* d, anchor a, anchor b where a.label = b.label`,
	}
	for _, src := range srcs {
		orig, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text := Format(orig)
		again, err := Parse(text)
		if err != nil {
			t.Fatalf("re-Parse of formatted query failed: %v\n%s", err, text)
		}
		if !equivalent(t, orig, again) {
			t.Errorf("round trip changed the query:\n%s\nformatted:\n%s", src, text)
		}
		if orig.Output.Suffix() != again.Output.Suffix() {
			t.Errorf("round trip changed the output spec: %q vs %q",
				orig.Output.Suffix(), again.Output.Suffix())
		}
		if Format(again) != text {
			t.Errorf("Format is not stable:\n%s\nvs\n%s", text, Format(again))
		}
	}
}
