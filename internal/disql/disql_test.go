package disql

import (
	"strings"
	"testing"

	"webdis/internal/nodequery"
)

// exampleQuery1 is the paper's Example Query 1: extract all global links on
// the DSL web-server starting from the lab's homepage.
const exampleQuery1 = `
select a.base, a.href
from document d such that "http://dsl.serc.iisc.ernet.in" L* d,
     anchor a
where a.ltype = "G"
`

// exampleQuery2 is the paper's Example Query 2: the convener query.
const exampleQuery2 = `
select d0.url, d1.url, r.text
from document d0 such that "http://csa.iisc.ernet.in" L d0,
where d0.title contains "lab"
     document d1 such that d0 G·(L*1) d1,
     relinfon r such that r.delimiter = "hr",
where (r.text contains "convener")
`

func TestParseExampleQuery1(t *testing.T) {
	w, err := Parse(exampleQuery1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Start) != 1 || w.Start[0] != "http://dsl.serc.iisc.ernet.in" {
		t.Errorf("Start = %v", w.Start)
	}
	if len(w.Stages) != 1 {
		t.Fatalf("stages = %d", len(w.Stages))
	}
	s := w.Stages[0]
	if s.PRE.String() != "L*" {
		t.Errorf("PRE = %s", s.PRE)
	}
	q := s.Query
	if len(q.Vars) != 2 || q.Vars[0].Name != "d" || q.Vars[1].Name != "a" {
		t.Errorf("vars = %+v", q.Vars)
	}
	if len(q.Select) != 2 || q.Select[0].String() != "a.base" || q.Select[1].String() != "a.href" {
		t.Errorf("select = %+v", q.Select)
	}
	if got := q.Where.String(); got != `a.ltype = "G"` {
		t.Errorf("where = %q", got)
	}
}

func TestParseExampleQuery2(t *testing.T) {
	w, err := Parse(exampleQuery2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Stages) != 2 {
		t.Fatalf("stages = %d", len(w.Stages))
	}
	q1, q2 := w.Stages[0], w.Stages[1]
	if q1.PRE.String() != "L" {
		t.Errorf("p1 = %s", q1.PRE)
	}
	if q2.PRE.String() != "G·L*1" {
		t.Errorf("p2 = %s", q2.PRE)
	}
	// q1 is: select d0.url from document d0 where d0.title contains "lab"
	if len(q1.Query.Select) != 1 || q1.Query.Select[0].String() != "d0.url" {
		t.Errorf("q1 select = %+v", q1.Query.Select)
	}
	if got := q1.Query.Where.String(); got != `d0.title contains "lab"` {
		t.Errorf("q1 where = %q", got)
	}
	// q2 is: select d1.url, r.text from document d1, relinfon r such that
	// r.delimiter = "hr" where r.text contains "convener"
	if len(q2.Query.Select) != 2 || q2.Query.Select[0].String() != "d1.url" || q2.Query.Select[1].String() != "r.text" {
		t.Errorf("q2 select = %+v", q2.Query.Select)
	}
	if len(q2.Query.Vars) != 2 || q2.Query.Vars[1].Rel != "relinfon" {
		t.Errorf("q2 vars = %+v", q2.Query.Vars)
	}
	if got := q2.Query.Vars[1].Cond.String(); got != `r.delimiter = "hr"` {
		t.Errorf("q2 relinfon cond = %q", got)
	}
	if got := q2.Query.Where.String(); got != `r.text contains "convener"` {
		t.Errorf("q2 where = %q", got)
	}
	if got := w.String(); !strings.Contains(got, "L q1 G·L*1 q2") {
		t.Errorf("String() = %q", got)
	}
	if w.NumQ() != 2 {
		t.Errorf("NumQ = %d", w.NumQ())
	}
}

func TestParseMultipleStartNodes(t *testing.T) {
	w, err := Parse(`select d.url from document d such that ("http://a.example", "http://b.example") G d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Start) != 2 || w.Start[0] != "http://a.example" || w.Start[1] != "http://b.example" {
		t.Errorf("Start = %v", w.Start)
	}
}

func TestParseASCIIDotConcat(t *testing.T) {
	w, err := Parse(`select d1.url from document d0 such that "http://x.example" L d0, document d1 such that d0 G.(L*2) d1`)
	if err != nil {
		t.Fatal(err)
	}
	if w.Stages[1].PRE.String() != "G·L*2" {
		t.Errorf("PRE = %s", w.Stages[1].PRE)
	}
}

func TestParseBooleanWhere(t *testing.T) {
	w, err := Parse(`select d.url from document d such that "http://x.example" L* d
		where d.title contains "lab" and not (d.length < "100" or d.text contains "draft")`)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Stages[0].Query.Where.String()
	want := `(d.title contains "lab" and not (d.length < "100" or d.text contains "draft"))`
	if got != want {
		t.Errorf("where = %q, want %q", got, want)
	}
}

func TestParseNotContains(t *testing.T) {
	w, err := Parse(`select d.url from document d such that "http://x.example" L d where d.text not contains "spam"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stages[0].Query.Where.String(); got != `d.text not contains "spam"` {
		t.Errorf("where = %q", got)
	}
}

func TestParseComments(t *testing.T) {
	w, err := Parse(`-- find labs
select d.url -- the URL
from document d such that "http://x.example" L d`)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Stages) != 1 {
		t.Errorf("stages = %d", len(w.Stages))
	}
}

func TestParseNumericOperand(t *testing.T) {
	w, err := Parse(`select d.url from document d such that "http://x.example" L d where d.length > 4096`)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Stages[0].Query.Where
	if p.Op != nodequery.Gt || p.Right.Lit != "4096" {
		t.Errorf("where = %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string // expected error substring
	}{
		{``, "expected"},
		{`select`, "expected column reference"},
		{`select d.url`, `expected "from"`},
		{`select d.url from anchor a`, "before any document"},
		{`select d.url from document d`, "such that"},
		{`select d.url from document d such that L d`, "StartNode"},
		{`select d.url from document d such that "u" L x`, "must end at"},
		{`select d.url from document d such that "u" d`, "empty PRE"},
		{`select x.url from document d such that "u" L d`, "undeclared variable"},
		{`select d.url from document d such that "u" L d, document d such that d L d`, "declared in both"},
		{`select d1.url from document d0 such that "u" L d0, document d1 such that "v" L d1`, "must start from the previous"},
		{`select d1.url from document d0 such that "u" L d0, document d1 such that d9 L d1`, "must chain"},
		{`select d.url from where d.url = "x"`, "before any relation"},
		{`select d.url from document L such that "u" L L`, "variable name"},
		{`select d.url from document d such that "u" L d where d.title`, "operator"},
		{`select d.url from document d such that "u" L d where d.title = `, "operand"},
		{`select d.url from document d such that "u" L*x d`, "path must end"},
		{`select d.nosuch from document d such that "u" L d`, "no attribute"},
		{`select d.url from document d such that "unterminated`, "unterminated"},
		{`select d.url from document d such that "u" L d where d.title ~ "x"`, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.frag)
		}
	}
}

func TestParseWhereBindsToOpenStage(t *testing.T) {
	// Both where clauses must land on their own stages.
	w := MustParse(`
select d0.url, d1.url
from document d0 such that "http://x.example" L d0,
where d0.title contains "one"
     document d1 such that d0 G d1
where d1.title contains "two"`)
	if got := w.Stages[0].Query.Where.String(); !strings.Contains(got, "one") {
		t.Errorf("stage 1 where = %q", got)
	}
	if got := w.Stages[1].Query.Where.String(); !strings.Contains(got, "two") {
		t.Errorf("stage 2 where = %q", got)
	}
}

func TestParseEmptySelectForStage(t *testing.T) {
	// A stage may contribute nothing to the select list: it then acts as a
	// pure filter along the path.
	w := MustParse(`
select d1.url
from document d0 such that "http://x.example" L d0,
where d0.title contains "lab"
     document d1 such that d0 G d1`)
	if len(w.Stages[0].Query.Select) != 0 {
		t.Errorf("stage 1 select = %+v", w.Stages[0].Query.Select)
	}
	if len(w.Stages[1].Query.Select) != 1 {
		t.Errorf("stage 2 select = %+v", w.Stages[1].Query.Select)
	}
}

func TestWebQueryValidate(t *testing.T) {
	w := &WebQuery{}
	if err := w.Validate(); err == nil {
		t.Error("empty web-query should not validate")
	}
	w = &WebQuery{Start: []string{"http://x.example"}}
	if err := w.Validate(); err == nil {
		t.Error("web-query without stages should not validate")
	}
}

func TestParseIndexSource(t *testing.T) {
	w, err := Parse(`select d.url from document d such that index("database lab") L* d`)
	if err != nil {
		t.Fatal(err)
	}
	if w.StartTerm != "database lab" || len(w.Start) != 0 {
		t.Errorf("w = %+v", w)
	}
	if !strings.Contains(w.String(), `index("database lab")`) {
		t.Errorf("String = %q", w.String())
	}
	// Round-trips through the formatter.
	again, err := Parse(Format(w))
	if err != nil {
		t.Fatal(err)
	}
	if again.StartTerm != w.StartTerm {
		t.Errorf("round trip lost the index term: %+v", again)
	}
	// Errors.
	for _, src := range []string{
		`select d.url from document d such that index(notastring) L d`,
		`select d.url from document d such that index("x" L d`,
		`select index.url from document index such that "u" L index`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCorrelatedStages(t *testing.T) {
	w := MustParse(`
select d1.url
from document d0 such that "http://h.example/" G d0,
where d0.title contains "Topic"
     document d1 such that d0 L d1
where d1.title contains d0.title and d1.length > d0.length`)
	if len(w.Stages[0].Export) != 2 || w.Stages[0].Export[0] != "length" || w.Stages[0].Export[1] != "title" {
		t.Errorf("export = %v", w.Stages[0].Export)
	}
	outer := w.Stages[1].Query.Outer
	if len(outer) != 2 {
		t.Fatalf("outer = %v", outer)
	}
	// The first stage itself has no outer references.
	if len(w.Stages[0].Query.Outer) != 0 {
		t.Errorf("stage 1 outer = %v", w.Stages[0].Query.Outer)
	}
	// Referencing a later stage's variable fails (undeclared at stage 1).
	if _, err := Parse(`
select d0.url
from document d0 such that "http://h.example/" G d0,
where d0.title contains d1.title
     document d1 such that d0 L d1`); err == nil {
		t.Error("forward reference should fail")
	}
	// Cross-stage references are limited to document attributes.
	if _, err := Parse(`
select d1.url
from document d0 such that "http://h.example/" G d0,
     document d1 such that d0 L d1
where d1.title contains d0.nosuch`); err == nil {
		t.Error("bad outer attribute should fail")
	}
}
