// Package trace is the causal tracing subsystem of the WEBDIS
// reproduction. The paper's whole evaluation is about *who did what
// where* — Figure 7 is literally a hand-drawn trace of query states
// hopping across the campus web — so this package makes that first
// class: every clone message carries a span context (wire.SpanID, parent
// span, hop number), every site appends structured events to a
// lock-cheap site-local Journal, and the Journey builder merges the
// journals back into the per-query clone tree with per-hop latencies and
// per-clone fates.
//
// The design splits into three layers:
//
//   - Journal: a fixed-capacity ring of events claimed with one atomic
//     add and published with one atomic store per append — cheap enough
//     to leave on under load. Full journals count drops instead of
//     blocking writers.
//   - Journey: the per-query clone tree reconstructed from any set of
//     events — full site journals in-process, or the span links echoed
//     on ResultMsg when only the user-site's view exists (real TCP).
//   - Exporters: a Figure-7-style traversal listing, an indented clone
//     tree, a Graphviz DOT overlay matching webgen's output, and Chrome
//     trace_event JSON for chrome://tracing.
package trace

import (
	"runtime"
	"sync/atomic"
	"time"

	"webdis/internal/wire"
)

// Kind classifies one trace event.
type Kind string

// Clone life-cycle events, written by query servers and the user-site.
const (
	// Dispatch is the user-site sending a root clone (send_query).
	Dispatch Kind = "dispatch"
	// Arrive is a query server receiving one clone message.
	Arrive Kind = "arrive"
	// Drop is a duplicate arrival purged by the Node-query Log Table.
	Drop Kind = "dedup-drop"
	// Rewrite is a superset arrival processed after the A*m rewrite.
	Rewrite Kind = "rewrite"
	// Evaluate is one node-query evaluation (a ServerRouter visit).
	Evaluate Kind = "evaluate"
	// Route is a visit with no node-query due (a PureRouter visit).
	Route Kind = "route"
	// DeadEnd is a node-query that found no answer.
	DeadEnd Kind = "dead-end"
	// Missing is a destination node whose document could not be loaded.
	Missing Kind = "missing"
	// Forward is a child clone shipped to another site (or re-queued
	// locally, when Detail — the destination site — equals the event's
	// own Site).
	Forward Kind = "forward"
	// Result is a result/CHT batch dispatched to the user-site.
	Result Kind = "result"
	// Bounce is an undeliverable clone returned to the user-site.
	Bounce Kind = "bounce"
	// Retry is one repeat send attempt under the server's retry policy.
	Retry Kind = "retry-attempt"
	// Terminate is a clone batch purged because its result dispatch
	// failed — the paper's passive termination signal.
	Terminate Kind = "terminate"
	// ForwardFailed is a clone whose forward could not reach its site
	// (after any retries); its CHT entries are retired instead.
	ForwardFailed Kind = "forward-failed"
	// Reap is the user-site retiring orphaned CHT entries.
	Reap Kind = "reap"
	// Expire is a clone terminated for exceeding its wire-carried budget
	// (deadline passed, or a quota spent): the typed EXPIRED retirement.
	// Its CHT entries retire without children.
	Expire Kind = "expire"
	// Shed is a fresh clone refused by admission control — the site was
	// over its high watermark — and returned to the user-site unstarted.
	Shed Kind = "shed"
	// Stop is a clone terminated by the user-site's active-termination
	// broadcast (Budget.FirstN satisfied, or the submitting context was
	// cancelled): the typed STOPPED retirement. Like Expire, its CHT
	// entries retire without children.
	Stop Kind = "stop"
	// Failover is a clone re-resolved to another replica of its
	// destination site after the retry policy exhausted against the
	// first pick: Detail records "site -> endpoint".
	Failover Kind = "failover"
	// Replay is the user-site re-dispatching the live CHT entries it
	// holds for a crashed replica: a fresh clone carrying the original
	// instance serials, sent to a surviving replica, so the traversal
	// resumes where the corpse dropped it.
	Replay Kind = "replay"
	// Invalidate is a site evicting one mutated document's cached state
	// (retained database, store entry, index postings); Detail records
	// whether the change was content-only ("edited") or structural
	// ("rewired").
	Invalidate Kind = "invalidate"
	// Delta is a DELTA notification leaving a site for a standing
	// watch's collector (or the collector folding one in).
	Delta Kind = "delta"
)

// Transport-level events, written by the netsim observer hook.
const (
	Dial         Kind = "dial"
	Refused      Kind = "refused"
	FrameDropped Kind = "frame-dropped"
	Severed      Kind = "severed"
	Crashed      Kind = "crashed"
)

// Event is one record of a site-local journal.
type Event struct {
	Seq    int64         // append order within the journal
	At     time.Duration // monotonic time since the process trace epoch
	Site   string        // journal owner (site, user endpoint, or "(net)")
	Query  string        // wire.QueryID.String(); "" for transport events
	Span   wire.SpanID   // clone message the event belongs to
	Parent wire.SpanID   // span of the clone it was forwarded from
	Kind   Kind
	Node   string // destination node URL (or dial source for net events)
	State  string // canonical (num_q, rem) clone state
	Hop    int    // links traversed by the clone
	Detail string
}

// epoch anchors every journal's monotonic clock: all journals of one
// process share it, so merged events order causally (a parent's forward
// always times before its child's arrival).
var epoch = time.Now()

// Now returns the current monotonic trace time.
func Now() time.Duration { return time.Since(epoch) }

// DefaultCapacity is the journal ring size when none is given.
const DefaultCapacity = 4096

// Journal is a site-local, fixed-capacity event ring. Appends are
// lock-free: a writer claims a slot with one atomic add and publishes it
// with one atomic store, so journaling stays cheap on the query-processor
// hot path. When the ring fills, further events are counted as dropped
// rather than blocking or overwriting — a flushable bound, not a lie.
// A nil *Journal is valid and ignores all writes.
type Journal struct {
	site    string
	cur     atomic.Int64
	dropped atomic.Int64
	slots   []slot
}

type slot struct {
	done atomic.Bool
	ev   Event
}

// NewJournal returns an empty journal owned by site (capacity <= 0 uses
// DefaultCapacity).
func NewJournal(site string, capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Journal{site: site, slots: make([]slot, capacity)}
}

// Site returns the journal owner's name.
func (j *Journal) Site() string {
	if j == nil {
		return ""
	}
	return j.site
}

// Append records one event, stamping its sequence number, timestamp and
// (unless already set) owning site. Safe for concurrent use; a nil
// journal ignores the event.
func (j *Journal) Append(e Event) {
	if j == nil {
		return
	}
	i := j.cur.Add(1) - 1
	if i >= int64(len(j.slots)) {
		j.dropped.Add(1)
		return
	}
	if e.Site == "" {
		e.Site = j.site
	}
	e.Seq = i
	e.At = Now()
	s := &j.slots[i]
	s.ev = e
	s.done.Store(true)
}

// Len returns the number of events recorded (excluding dropped ones).
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	n := j.cur.Load()
	if n > int64(len(j.slots)) {
		n = int64(len(j.slots))
	}
	return int(n)
}

// Dropped returns the number of events lost to a full ring.
func (j *Journal) Dropped() int64 {
	if j == nil {
		return 0
	}
	return j.dropped.Load()
}

// Events returns a copy of the committed events in append order. It is
// safe to call while writers are appending: a slot that has been claimed
// but not yet published is waited out (publication is two instructions
// away, never blocked).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	n := int64(j.Len())
	out := make([]Event, 0, n)
	for i := int64(0); i < n; i++ {
		s := &j.slots[i]
		for !s.done.Load() {
			// The claiming writer is between its atomic add and its
			// publishing store; yield until it lands.
			runtime.Gosched()
		}
		out = append(out, s.ev)
	}
	return out
}

// Flush returns the committed events and resets the journal, reclaiming
// the ring (and the drop counter) for the next query. Unlike Events it
// must not race with concurrent Appends: flush between queries, or after
// the deployment has quiesced.
func (j *Journal) Flush() []Event {
	if j == nil {
		return nil
	}
	out := j.Events()
	for i := range out {
		j.slots[i].done.Store(false)
	}
	j.dropped.Store(0)
	j.cur.Store(0)
	return out
}
