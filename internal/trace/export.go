package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// traversalKinds are the per-node processing events that make up the
// paper's Figure-7 state sequence.
var traversalKinds = map[Kind]bool{
	Evaluate: true, Route: true, DeadEnd: true,
	Drop: true, Rewrite: true, Missing: true,
}

// TraversalLine is one row of the regenerated Figure-7 trace.
type TraversalLine struct {
	Site   string
	Node   string
	State  string
	Action string
	Detail string
}

// Traversal regenerates the paper's Figure-7 state sequence from the
// journey's real spans: one line per node visit, in causal order, with
// the clone state (num_q, rem) at that visit. It is the journaled
// equivalent of the ad-hoc trace the campus experiment prints.
func (jy *Journey) Traversal() []TraversalLine {
	var out []TraversalLine
	for _, e := range jy.Events {
		if !traversalKinds[e.Kind] {
			continue
		}
		action := string(e.Kind)
		switch e.Kind {
		case Evaluate:
			action = "eval"
		case Drop:
			action = "drop"
		}
		out = append(out, TraversalLine{
			Site: e.Site, Node: e.Node, State: e.State,
			Action: action, Detail: e.Detail,
		})
	}
	return out
}

// FormatTraversal renders the traversal as aligned text lines.
func (jy *Journey) FormatTraversal() string {
	var b strings.Builder
	for _, l := range jy.Traversal() {
		fmt.Fprintf(&b, "%-44s %-14s %-9s %s\n", l.Node, l.State, l.Action, l.Detail)
	}
	return b.String()
}

// Tree renders the clone tree as indented text: one line per span with
// site, hop, state, fate and hop latency. This is what `webdis -trace`
// prints — over TCP it is stitched purely from the span ids echoed on
// result messages.
func (jy *Journey) Tree() string {
	var b strings.Builder
	jy.Walk(func(n *SpanNode, depth int) {
		site := n.Site
		if site == "" {
			site = n.DestSite + "?"
		}
		lat := ""
		if l := n.Latency(); l >= 0 {
			lat = " +" + l.Round(time.Microsecond).String()
		}
		retries := ""
		if n.Retries > 0 {
			retries = fmt.Sprintf(" retries=%d", n.Retries)
		}
		fmt.Fprintf(&b, "%s%s hop=%d %s [%s]%s%s\n",
			strings.Repeat("  ", depth), site, n.Hop, n.State, n.Fate, lat, retries)
	})
	return b.String()
}

// DOT renders the journey as a Graphviz overlay in the same style as
// webgen's web DOT (solid intra-site, dashed cross-site): sites are
// nodes, each aggregated clone flow is an edge labeled with its clone
// count and mean hop latency. Lost hops are drawn red and bold, so
// injected faults are visible at a glance next to the web topology.
func (jy *Journey) DOT() string {
	type flow struct {
		n     int
		lost  int
		total time.Duration
		timed int
	}
	flows := make(map[[2]string]*flow)
	var keys [][2]string
	jy.Walk(func(n *SpanNode, _ int) {
		if n.FromSite == "" {
			return
		}
		to := n.Site
		if to == "" {
			to = n.DestSite
		}
		k := [2]string{n.FromSite, to}
		f := flows[k]
		if f == nil {
			f = &flow{}
			flows[k] = f
			keys = append(keys, k)
		}
		f.n++
		if n.Fate == FateInFlight || n.Fate == FateLostForward {
			f.lost++
		}
		if l := n.Latency(); l >= 0 {
			f.total += l
			f.timed++
		}
	})
	sort.Slice(keys, func(i, k int) bool {
		if keys[i][0] != keys[k][0] {
			return keys[i][0] < keys[k][0]
		}
		return keys[i][1] < keys[k][1]
	})
	var b strings.Builder
	b.WriteString("digraph journey {\n  rankdir=LR;\n")
	seen := make(map[string]bool)
	for _, k := range keys {
		for _, s := range k[:] {
			if !seen[s] {
				seen[s] = true
				fmt.Fprintf(&b, "  %q;\n", s)
			}
		}
	}
	for _, k := range keys {
		f := flows[k]
		label := fmt.Sprintf("%d clone", f.n)
		if f.n != 1 {
			label += "s"
		}
		if f.timed > 0 {
			label += fmt.Sprintf(", %s", (f.total / time.Duration(f.timed)).Round(time.Microsecond))
		}
		style := "solid"
		if k[0] != k[1] {
			style = "dashed"
		}
		attrs := fmt.Sprintf("style=%s", style)
		if f.lost > 0 {
			attrs = "style=bold, color=red"
			label += fmt.Sprintf(", %d lost", f.lost)
		}
		fmt.Fprintf(&b, "  %q -> %q [%s, label=%q];\n", k[0], k[1], attrs, label)
	}
	b.WriteString("}\n")
	return b.String()
}

// chromeEvent is one entry of the Chrome trace_event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace exports the journey in Chrome's trace_event JSON format:
// open chrome://tracing (or https://ui.perfetto.dev) and load the bytes.
// Each site is a process row, each clone a slice from arrival to its last
// event, and flow arrows connect parents to the children they spawned.
func (jy *Journey) ChromeTrace() ([]byte, error) {
	pids := make(map[string]int)
	var events []chromeEvent
	pid := func(site string) int {
		id, ok := pids[site]
		if !ok {
			id = len(pids) + 1
			pids[site] = id
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: id,
				Args: map[string]any{"name": site},
			})
		}
		return id
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

	tid := 0
	jy.Walk(func(n *SpanNode, _ int) {
		tid++
		site := n.Site
		if site == "" {
			site = "(lost: " + n.DestSite + ")"
		}
		start := n.Arrived
		if start < 0 {
			start = n.Sent
		}
		if start < 0 {
			start = 0
		}
		end := n.Done
		if end < start {
			end = start
		}
		p := pid(site)
		events = append(events, chromeEvent{
			Name: n.State, Cat: "clone", Ph: "X",
			Ts: us(start), Dur: us(end - start), Pid: p, Tid: tid,
			Args: map[string]any{
				"span":   n.Span.String(),
				"parent": n.Parent.String(),
				"hop":    n.Hop,
				"fate":   n.Fate,
			},
		})
		// Flow arrow from the parent's forward to this clone's slice.
		if !n.Parent.IsZero() {
			if pp, ok := jy.Spans[n.Parent]; ok && n.Sent >= 0 {
				events = append(events, chromeEvent{
					Name: "clone", Cat: "flow", Ph: "s", ID: tid,
					Ts: us(n.Sent), Pid: pid(siteOf(pp)), Tid: 0,
				})
				events = append(events, chromeEvent{
					Name: "clone", Cat: "flow", Ph: "f", BP: "e", ID: tid,
					Ts: us(start), Pid: p, Tid: tid,
				})
			}
		}
	})
	return json.Marshal(map[string]any{"traceEvents": events})
}

func siteOf(n *SpanNode) string {
	if n.Site != "" {
		return n.Site
	}
	return "(lost: " + n.DestSite + ")"
}
