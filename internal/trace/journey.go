package trace

import (
	"sort"
	"time"

	"webdis/internal/wire"
)

// Fates summarize what finally happened to one clone message.
const (
	// FateProcessed: the clone was evaluated and its report reached the
	// user-site (or was applied locally by the hybrid fallback).
	FateProcessed = "processed"
	// FateBounced: the clone was returned to the user-site undelivered.
	FateBounced = "bounced"
	// FateTerminated: the result dispatch failed, so the processing site
	// purged the query — the paper's passive termination.
	FateTerminated = "terminated"
	// FateLostForward: every forward attempt failed; the clone never left
	// its creating site and its CHT entries were retired there.
	FateLostForward = "forward-failed"
	// FateInFlight: the clone was sent but no arrival or report was ever
	// journaled — it vanished on the wire (or the journal is partial).
	FateInFlight = "in-flight"
	// FateExpired: the clone was terminated for exceeding its budget
	// (deadline or quota); its entries were retired with a typed EXPIRED
	// report, so the query still completes — with fewer answers.
	FateExpired = "expired"
	// FateShed: the clone was refused by admission control before any
	// processing — the query never started at that site.
	FateShed = "shed"
	// FateStopped: the clone was terminated by the user-site's active
	// StopMsg broadcast (early termination); its entries were retired
	// with a typed STOPPED report, so the query completes through the
	// CHT — sooner, with the answers gathered so far.
	FateStopped = "stopped"
)

// SpanNode is one clone message in a reconstructed journey.
type SpanNode struct {
	Span   wire.SpanID
	Parent wire.SpanID
	// FromSite created and sent the clone; Site processed it ("" when it
	// never arrived); DestSite is where it was addressed.
	FromSite string
	Site     string
	DestSite string
	Hop      int
	State    string
	// Sent, Arrived and Done are monotonic trace times (-1 when the
	// corresponding event is not in the journals).
	Sent     time.Duration
	Arrived  time.Duration
	Done     time.Duration
	Fate    string
	Retries int
	// Failovers counts re-resolutions to another replica of the
	// destination site after retries exhausted against the first pick.
	Failovers int
	Events    []Event // this span's events, time-ordered
	Children  []*SpanNode
}

// Latency returns the clone's hop latency (send to arrival), or -1 when
// either end is unknown.
func (n *SpanNode) Latency() time.Duration {
	if n.Sent < 0 || n.Arrived < 0 {
		return -1
	}
	return n.Arrived - n.Sent
}

// Journey is the causal clone tree of one query: every clone message
// that existed, each exactly once, with parent, site, hop latency and
// fate — the machine-checkable version of the paper's Figure 7.
type Journey struct {
	Query  string
	Roots  []*SpanNode
	Spans  map[wire.SpanID]*SpanNode
	Events []Event // the query's events across all journals, time-ordered
}

// BuildJourney reconstructs the journey of the query whose
// wire.QueryID.String() is query from any mix of journal events: full
// site journals (in-process deployments) or the user-site's
// report-stitched view (real TCP). Events of other queries and untraced
// (zero-span) events are ignored.
func BuildJourney(query string, events []Event) *Journey {
	jy := &Journey{Query: query, Spans: make(map[wire.SpanID]*SpanNode)}
	for _, e := range events {
		if e.Query == query {
			jy.Events = append(jy.Events, e)
		}
	}
	sort.SliceStable(jy.Events, func(i, k int) bool { return jy.Events[i].At < jy.Events[k].At })

	node := func(id wire.SpanID) *SpanNode {
		n := jy.Spans[id]
		if n == nil {
			n = &SpanNode{Span: id, Sent: -1, Arrived: -1, Done: -1}
			jy.Spans[id] = n
		}
		return n
	}
	for _, e := range jy.Events {
		if e.Span.IsZero() {
			continue
		}
		n := node(e.Span)
		n.Events = append(n.Events, e)
		if e.At > n.Done {
			n.Done = e.At
		}
		switch e.Kind {
		case Dispatch, Forward:
			// The creating side: establishes parentage and send time.
			n.Parent = e.Parent
			n.FromSite = e.Site
			n.DestSite = e.Detail
			n.Hop = e.Hop
			if n.State == "" {
				n.State = e.State
			}
			if n.Sent < 0 || e.At < n.Sent {
				n.Sent = e.At
			}
		case ForwardFailed:
			n.Parent = e.Parent
			n.FromSite = e.Site
			n.DestSite = e.Detail
			n.Hop = e.Hop
			n.Fate = FateLostForward
		case Arrive:
			n.Site = e.Site
			n.Hop = e.Hop
			if n.State == "" {
				n.State = e.State
			}
			if n.Arrived < 0 || e.At < n.Arrived {
				n.Arrived = e.At
			}
		case Result:
			// Over TCP the report is the only evidence of the processing
			// site; in-process it just confirms the arrival event.
			if n.Site == "" {
				n.Site = e.Site
			}
			n.Fate = FateProcessed
		case Bounce:
			n.Fate = FateBounced
		case Terminate:
			n.Fate = FateTerminated
		case Expire:
			// Like Result, the expiry report may be the only evidence of
			// the enforcing site (TCP stitch).
			if n.Site == "" {
				n.Site = e.Site
			}
			n.Fate = FateExpired
		case Shed:
			n.Fate = FateShed
		case Stop:
			// Like Expire, the stop report may be the only evidence of
			// the terminating site (TCP stitch).
			if n.Site == "" {
				n.Site = e.Site
			}
			n.Fate = FateStopped
		case Retry:
			n.Retries++
		case Failover:
			n.Failovers++
		case Replay:
			// A fresh span dispatched by the user-site to resume the work
			// a crashed replica dropped: like Dispatch it establishes the
			// sending side.
			n.FromSite = e.Site
			n.DestSite = e.Detail
			if n.State == "" {
				n.State = e.State
			}
			if n.Sent < 0 || e.At < n.Sent {
				n.Sent = e.At
			}
		}
	}

	for _, n := range jy.Spans {
		if n.Fate == "" {
			if n.Site == "" {
				n.Fate = FateInFlight
			} else {
				// Arrived but no report was journaled (e.g. an empty
				// update batch); it was still processed.
				n.Fate = FateProcessed
			}
		}
	}

	// Link children to parents; spans whose parent is unknown (zero, or
	// missing from the journals) are roots.
	var ids []wire.SpanID
	for id := range jy.Spans {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool {
		if ids[i].Origin != ids[k].Origin {
			return ids[i].Origin < ids[k].Origin
		}
		return ids[i].Seq < ids[k].Seq
	})
	for _, id := range ids {
		n := jy.Spans[id]
		if p, ok := jy.Spans[n.Parent]; ok && !n.Parent.IsZero() {
			p.Children = append(p.Children, n)
		} else {
			jy.Roots = append(jy.Roots, n)
		}
	}
	for _, n := range jy.Spans {
		sort.Slice(n.Children, func(i, k int) bool {
			a, b := n.Children[i], n.Children[k]
			if a.Sent != b.Sent {
				return a.Sent < b.Sent
			}
			if a.Span.Origin != b.Span.Origin {
				return a.Span.Origin < b.Span.Origin
			}
			return a.Span.Seq < b.Span.Seq
		})
	}
	sort.Slice(jy.Roots, func(i, k int) bool {
		a, b := jy.Roots[i], jy.Roots[k]
		if a.Sent != b.Sent {
			return a.Sent < b.Sent
		}
		if a.Span.Origin != b.Span.Origin {
			return a.Span.Origin < b.Span.Origin
		}
		return a.Span.Seq < b.Span.Seq
	})
	return jy
}

// Walk visits every span depth-first from the roots.
func (jy *Journey) Walk(fn func(n *SpanNode, depth int)) {
	var rec func(n *SpanNode, depth int)
	rec = func(n *SpanNode, depth int) {
		fn(n, depth)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range jy.Roots {
		rec(r, 0)
	}
}

// Lost returns the spans that never completed processing: clones that
// vanished in flight or whose forwards failed outright. These are the
// exact hops where answer rows were lost — the fault-localization signal
// experiment T12 checks against the injected fault schedule.
func (jy *Journey) Lost() []*SpanNode {
	var out []*SpanNode
	jy.Walk(func(n *SpanNode, _ int) {
		if n.Fate == FateInFlight || n.Fate == FateLostForward {
			out = append(out, n)
		}
	})
	return out
}

// LostEdges aggregates Lost spans per (from-site, dest-site) pair,
// attributing each vanished clone to the network edge that swallowed it.
func (jy *Journey) LostEdges() map[[2]string]int {
	out := make(map[[2]string]int)
	for _, n := range jy.Lost() {
		out[[2]string{n.FromSite, n.DestSite}]++
	}
	return out
}

// Complete reports whether every clone in the tree was accounted for:
// no in-flight or failed-forward spans remain.
func (jy *Journey) Complete() bool { return len(jy.Lost()) == 0 }
