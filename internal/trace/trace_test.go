package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"webdis/internal/wire"
)

func span(origin string, seq int64) wire.SpanID { return wire.SpanID{Origin: origin, Seq: seq} }

func TestJournalAppendAndFlush(t *testing.T) {
	j := NewJournal("a.example", 8)
	if j.Site() != "a.example" {
		t.Fatalf("site = %q", j.Site())
	}
	j.Append(Event{Kind: Arrive, Query: "q1"})
	j.Append(Event{Kind: Forward, Query: "q1", Site: "elsewhere"})
	evs := j.Events()
	if len(evs) != 2 || j.Len() != 2 {
		t.Fatalf("events = %d, len = %d", len(evs), j.Len())
	}
	if evs[0].Site != "a.example" {
		t.Errorf("owner not stamped: %q", evs[0].Site)
	}
	if evs[1].Site != "elsewhere" {
		t.Errorf("explicit site overwritten: %q", evs[1].Site)
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Errorf("seqs = %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if evs[1].At < evs[0].At {
		t.Errorf("timestamps not monotone: %v then %v", evs[0].At, evs[1].At)
	}
	if got := len(j.Flush()); got != 2 {
		t.Fatalf("flush = %d events", got)
	}
	if j.Len() != 0 || len(j.Events()) != 0 {
		t.Fatalf("journal not reset: len %d", j.Len())
	}
	j.Append(Event{Kind: Arrive})
	if j.Len() != 1 {
		t.Fatalf("append after flush: len %d", j.Len())
	}
}

func TestJournalDropsWhenFull(t *testing.T) {
	j := NewJournal("a", 4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Kind: Arrive})
	}
	if j.Len() != 4 {
		t.Errorf("len = %d, want 4", j.Len())
	}
	if j.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", j.Dropped())
	}
	j.Flush()
	if j.Dropped() != 0 {
		t.Errorf("dropped after flush = %d", j.Dropped())
	}
}

func TestNilJournalIsValid(t *testing.T) {
	var j *Journal
	j.Append(Event{Kind: Arrive})
	if j.Len() != 0 || j.Dropped() != 0 || j.Events() != nil || j.Flush() != nil || j.Site() != "" {
		t.Fatal("nil journal misbehaved")
	}
}

// TestJournalConcurrentAppend hammers one journal from many goroutines
// while a reader drains it; run with -race.
func TestJournalConcurrentAppend(t *testing.T) {
	j := NewJournal("a", 512)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				j.Append(Event{Kind: Evaluate, Hop: g})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			j.Events()
		}
	}()
	wg.Wait()
	<-done
	if got := j.Len() + int(j.Dropped()); got != 800 {
		t.Fatalf("committed+dropped = %d, want 800", got)
	}
}

// testEvents is a hand-built two-site journey: the user dispatches a
// root clone to site a, which evaluates and forwards two children — one
// arrives at b and reports, one vanishes on the wire.
func testEvents() []Event {
	root, c1, c2 := span("user/q1", 1), span("a/query", 1), span("a/query", 2)
	return []Event{
		{At: 1, Site: "user", Query: "q", Span: root, Kind: Dispatch, State: "(1, L)", Detail: "a"},
		{At: 2, Site: "a", Query: "q", Span: root, Kind: Arrive, State: "(1, L)", Hop: 0},
		{At: 3, Site: "a", Query: "q", Span: root, Kind: Evaluate, Node: "http://a/x", State: "(1, N)"},
		{At: 4, Site: "a", Query: "q", Span: root, Kind: Result},
		{At: 5, Site: "a", Query: "q", Span: c1, Parent: root, Kind: Forward, Detail: "b", Hop: 1},
		{At: 6, Site: "a", Query: "q", Span: c2, Parent: root, Kind: Forward, Detail: "c", Hop: 1},
		{At: 7, Site: "b", Query: "q", Span: c1, Kind: Arrive, Hop: 1},
		{At: 8, Site: "b", Query: "q", Span: c1, Kind: Result},
		{At: 9, Site: "x", Query: "other", Span: span("x", 9), Kind: Arrive},
	}
}

func TestBuildJourney(t *testing.T) {
	jy := BuildJourney("q", testEvents())
	if len(jy.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(jy.Spans))
	}
	if len(jy.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(jy.Roots))
	}
	root := jy.Roots[0]
	if root.Site != "a" || root.Fate != FateProcessed || len(root.Children) != 2 {
		t.Fatalf("root = %+v", root)
	}
	if root.Latency() != 1 {
		t.Errorf("root latency = %v", root.Latency())
	}
	c1 := root.Children[0]
	if c1.Site != "b" || c1.FromSite != "a" || c1.Fate != FateProcessed || c1.Hop != 1 {
		t.Fatalf("c1 = %+v", c1)
	}
	c2 := root.Children[1]
	if c2.Fate != FateInFlight || c2.DestSite != "c" {
		t.Fatalf("c2 = %+v", c2)
	}
	if jy.Complete() {
		t.Error("journey with a vanished clone reported complete")
	}
	lost := jy.LostEdges()
	if len(lost) != 1 || lost[[2]string{"a", "c"}] != 1 {
		t.Errorf("lost edges = %v", lost)
	}
	// Events of other queries must not leak in.
	for _, e := range jy.Events {
		if e.Query != "q" {
			t.Errorf("foreign event leaked: %+v", e)
		}
	}
}

func TestJourneyFates(t *testing.T) {
	mk := func(extra ...Event) *Journey {
		base := []Event{
			{At: 1, Site: "a", Query: "q", Span: span("a", 1), Kind: Forward, Detail: "b", Hop: 1},
		}
		return BuildJourney("q", append(base, extra...))
	}
	if jy := mk(); jy.Spans[span("a", 1)].Fate != FateInFlight {
		t.Errorf("no arrival: fate = %q", jy.Spans[span("a", 1)].Fate)
	}
	if jy := mk(Event{At: 2, Site: "a", Query: "q", Span: span("a", 1), Kind: ForwardFailed, Detail: "b"}); jy.Spans[span("a", 1)].Fate != FateLostForward {
		t.Errorf("forward failed: fate = %q", jy.Spans[span("a", 1)].Fate)
	}
	if jy := mk(Event{At: 2, Site: "a", Query: "q", Span: span("a", 1), Kind: Bounce}); jy.Spans[span("a", 1)].Fate != FateBounced {
		t.Errorf("bounce: fate = %q", jy.Spans[span("a", 1)].Fate)
	}
	if jy := mk(
		Event{At: 2, Site: "b", Query: "q", Span: span("a", 1), Kind: Arrive, Hop: 1},
		Event{At: 3, Site: "b", Query: "q", Span: span("a", 1), Kind: Terminate},
	); jy.Spans[span("a", 1)].Fate != FateTerminated {
		t.Errorf("terminate: fate = %q", jy.Spans[span("a", 1)].Fate)
	}
	// A bounced clone later processed centrally ends up processed.
	if jy := mk(
		Event{At: 2, Site: "a", Query: "q", Span: span("a", 1), Kind: Bounce},
		Event{At: 3, Site: "user", Query: "q", Span: span("a", 1), Kind: Arrive, Hop: 1},
		Event{At: 4, Site: "user", Query: "q", Span: span("a", 1), Kind: Result},
	); jy.Spans[span("a", 1)].Fate != FateProcessed {
		t.Errorf("bounce then fallback: fate = %q", jy.Spans[span("a", 1)].Fate)
	}
	if jy := mk(Event{At: 2, Site: "a", Query: "q", Span: span("a", 1), Kind: Retry, Detail: "b attempt 2"}); jy.Spans[span("a", 1)].Retries != 1 {
		t.Errorf("retries = %d", jy.Spans[span("a", 1)].Retries)
	}
}

func TestExporters(t *testing.T) {
	jy := BuildJourney("q", testEvents())

	trav := jy.Traversal()
	if len(trav) != 1 || trav[0].Action != "eval" || trav[0].Node != "http://a/x" {
		t.Fatalf("traversal = %+v", trav)
	}
	if !strings.Contains(jy.FormatTraversal(), "http://a/x") {
		t.Error("FormatTraversal missing the node")
	}

	tree := jy.Tree()
	if !strings.Contains(tree, "a hop=0") || !strings.Contains(tree, "  b hop=1") {
		t.Errorf("tree:\n%s", tree)
	}

	dot := jy.DOT()
	for _, want := range []string{"digraph journey", `"a" -> "b"`, "color=red", "1 lost"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}

	data, err := jy.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var slices, flows int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			slices++
		case "s":
			flows++
		}
	}
	if slices != 3 || flows != 2 {
		t.Errorf("chrome trace: %d slices, %d flow starts", slices, flows)
	}
}

func TestSpanIDString(t *testing.T) {
	if s := span("a/query", 3).String(); s != "a/query#3" {
		t.Errorf("String = %q", s)
	}
	var zero wire.SpanID
	if !zero.IsZero() || zero.String() != "-" {
		t.Errorf("zero span: IsZero=%v String=%q", zero.IsZero(), zero.String())
	}
}
