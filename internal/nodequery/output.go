package nodequery

import (
	"fmt"
	"strconv"
	"strings"
)

// AggKind names an aggregate function of a DISQL select list.
type AggKind int

// Aggregate kinds. AggNone marks a plain (non-aggregated) column.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
)

var aggNames = map[AggKind]string{
	AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max",
}

func (a AggKind) String() string {
	if s, ok := aggNames[a]; ok {
		return s
	}
	return "none"
}

// OutputCol is one item of an aggregated select list (or an order-by
// key): either a plain column reference — which must appear in the
// group-by list — or an aggregate over a column of the final stage.
// Star marks count(*).
type OutputCol struct {
	Agg  AggKind
	Star bool   // count(*)
	Ref  ColRef // unset when Star
}

func (c OutputCol) String() string {
	if c.Agg == AggNone {
		return c.Ref.String()
	}
	if c.Star {
		return c.Agg.String() + "(*)"
	}
	return c.Agg.String() + "(" + c.Ref.String() + ")"
}

// OrderKey is one order-by item: an output column and a direction.
type OrderKey struct {
	Col  OutputCol
	Desc bool
}

func (k OrderKey) String() string {
	if k.Desc {
		return k.Col.String() + " desc"
	}
	return k.Col.String()
}

// OutputSpec is the user-site output contract of a web-query beyond the
// plain select list: grouping, aggregation, ordering and a row limit.
// A nil OutputSpec (or one with no aggregates and no group-by) leaves
// the classic per-stage result tables untouched except for final
// ordering and limiting.
//
// Like the rest of this package the spec is plain data, so it travels
// inside clone messages with encoding/gob when the planner pushes the
// final aggregation down to remote sites as a plan fragment.
type OutputSpec struct {
	Cols    []OutputCol // aggregated select list; nil for plain queries
	GroupBy []ColRef
	OrderBy []OrderKey
	Limit   int // 0 = unlimited
}

// Grouped reports whether the spec folds rows into groups (any
// aggregate or an explicit group-by), which changes the shape of the
// final result table.
func (s *OutputSpec) Grouped() bool {
	if s == nil {
		return false
	}
	if len(s.GroupBy) > 0 {
		return true
	}
	return s.HasAggs()
}

// HasAggs reports whether any select or order-by item aggregates.
func (s *OutputSpec) HasAggs() bool {
	if s == nil {
		return false
	}
	for _, c := range s.Cols {
		if c.Agg != AggNone {
			return true
		}
	}
	for _, k := range s.OrderBy {
		if k.Col.Agg != AggNone {
			return true
		}
	}
	return false
}

// Suffix renders the group-by / order-by / limit tail in DISQL syntax
// (empty when there is none); Format appends it to the canonical text.
func (s *OutputSpec) Suffix() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	if len(s.GroupBy) > 0 {
		b.WriteString("\ngroup by ")
		for i, c := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString("\norder by ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.String())
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&b, "\nlimit %d", s.Limit)
	}
	return b.String()
}

// CompareVals orders two virtual-relation values exactly as the
// comparison predicates do (evalCmp): numerically when both sides
// parse as floats, by byte order otherwise. Every ordering decision of
// the planner — hash-join keys, order-by, MIN/MAX — goes through this
// so that the operator pipeline is indistinguishable from the
// nested-loop evaluator.
func CompareVals(a, b string) int {
	an, aerr := strconv.ParseFloat(a, 64)
	bn, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		switch {
		case an < bn:
			return -1
		case an > bn:
			return 1
		}
		return 0
	}
	return strings.Compare(a, b)
}

// CanonVal maps a value to a key that is equal for two values exactly
// when CompareVals reports them equal: numeric values canonicalize to
// their shortest float form ("1.0" and "1" collide), everything else
// keeps byte identity. Hash joins and group-by hashing use it.
func CanonVal(v string) string {
	if n, err := strconv.ParseFloat(v, 64); err == nil {
		return "n\x01" + strconv.FormatFloat(n, 'g', -1, 64)
	}
	return "s\x01" + v
}
