// Package nodequery defines the node-queries of the WEBDIS model: the
// locally evaluable piece of a web-query that a query-server runs against
// the virtual relations of a single node (paper Section 2.3). A web-query
// Q = S p1 q1 p2 q2 … pn qn carries one node-query q_k per traversal stage;
// this package represents the q_k and evaluates them against a
// relmodel.DB.
//
// The types here are deliberately plain data (no interfaces, no function
// values) so that node-queries serialize directly with encoding/gob when a
// clone of the web-query is forwarded to another site — the Go analog of
// the Java object serialization the original system used.
package nodequery

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"webdis/internal/relmodel"
)

// ColRef names an attribute of a declared relation variable, e.g. d0.title.
type ColRef struct {
	Var, Col string
}

func (c ColRef) String() string { return c.Var + "." + c.Col }

// Operand is one side of a comparison: either a column reference or a
// string literal.
type Operand struct {
	IsCol bool
	Col   ColRef
	Lit   string
}

// ColOperand returns an Operand referencing v.c.
func ColOperand(v, c string) Operand { return Operand{IsCol: true, Col: ColRef{v, c}} }

// LitOperand returns a literal string Operand.
func LitOperand(s string) Operand { return Operand{Lit: s} }

func (o Operand) String() string {
	if o.IsCol {
		return o.Col.String()
	}
	return strconv.Quote(o.Lit)
}

// PredKind discriminates predicate tree nodes.
type PredKind int

// Predicate node kinds.
const (
	True PredKind = iota // no condition
	And
	Or
	Not
	Cmp
)

// CmpOp is a comparison operator. String comparisons are used unless both
// operands are numeric, in which case the comparison is numeric; Contains
// is a case-insensitive substring test, matching the paper's Example Query
// 2 where the condition `title contains "lab"` selects the "Laboratories"
// page.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
	Contains
	NotContains
)

var cmpNames = map[CmpOp]string{
	Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Contains: "contains", NotContains: "not contains",
}

func (o CmpOp) String() string { return cmpNames[o] }

// Pred is a boolean predicate tree over the virtual relations. The zero
// value is the always-true predicate.
type Pred struct {
	Kind        PredKind
	Kids        []*Pred // And, Or (n-ary), Not (unary)
	Left, Right Operand // Cmp
	Op          CmpOp   // Cmp
}

// Conj returns the conjunction of the given predicates, treating nils as
// true and flattening where possible.
func Conj(ps ...*Pred) *Pred {
	var kids []*Pred
	for _, p := range ps {
		if p == nil || p.Kind == True {
			continue
		}
		if p.Kind == And {
			kids = append(kids, p.Kids...)
			continue
		}
		kids = append(kids, p)
	}
	switch len(kids) {
	case 0:
		return &Pred{Kind: True}
	case 1:
		return kids[0]
	}
	return &Pred{Kind: And, Kids: kids}
}

// Compare returns a comparison predicate left op right.
func Compare(left Operand, op CmpOp, right Operand) *Pred {
	return &Pred{Kind: Cmp, Left: left, Op: op, Right: right}
}

func (p *Pred) String() string {
	if p == nil {
		return "true"
	}
	switch p.Kind {
	case True:
		return "true"
	case And, Or:
		word := " and "
		if p.Kind == Or {
			word = " or "
		}
		parts := make([]string, len(p.Kids))
		for i, k := range p.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, word) + ")"
	case Not:
		return "not " + p.Kids[0].String()
	case Cmp:
		return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
	}
	return "?"
}

// VarDecl declares a relation variable of the node-query's from clause,
// e.g. `relinfon r such that r.delimiter = "hr"`. Cond is the non-path
// such-that predicate, or nil.
type VarDecl struct {
	Name string
	Rel  string // document, anchor or relinfon
	Cond *Pred
}

// Query is one node-query: variable declarations over the virtual
// relations, an optional where predicate, and the projection list (the
// slice of the user's select clause that refers to this stage's variables).
//
// Outer lists column references to *earlier stages'* document variables
// that this node-query's predicates use — the correlated-stage extension
// of the paper's footnote 2 ("node-queries that refer to multiple
// documents"). Their values are not in this node's virtual relations;
// they travel with the query clone and are supplied to Eval as an
// environment.
type Query struct {
	Vars   []VarDecl
	Where  *Pred
	Select []ColRef
	Outer  []ColRef
}

func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("select ")
	for i, c := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.String())
	}
	b.WriteString(" from ")
	for i, v := range q.Vars {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", v.Rel, v.Name)
		if v.Cond != nil && v.Cond.Kind != True {
			fmt.Fprintf(&b, " such that %s", v.Cond)
		}
	}
	if q.Where != nil && q.Where.Kind != True {
		fmt.Fprintf(&b, " where %s", q.Where)
	}
	return b.String()
}

// Validate checks that variable names are unique, relations exist, and
// every column reference in conditions and the select list resolves.
func (q *Query) Validate() error {
	rels := make(map[string]string)
	for _, v := range q.Vars {
		if v.Name == "" {
			return fmt.Errorf("nodequery: empty variable name")
		}
		if _, dup := rels[v.Name]; dup {
			return fmt.Errorf("nodequery: duplicate variable %q", v.Name)
		}
		cols, ok := relmodel.Schemas[strings.ToLower(v.Rel)]
		if !ok {
			return fmt.Errorf("nodequery: unknown relation %q for variable %q", v.Rel, v.Name)
		}
		_ = cols
		rels[v.Name] = strings.ToLower(v.Rel)
	}
	outer := make(map[string]bool, len(q.Outer))
	for _, c := range q.Outer {
		outer[c.String()] = true
	}
	check := func(c ColRef) error {
		rel, ok := rels[c.Var]
		if !ok {
			if outer[c.String()] {
				return nil // supplied by the clone's environment
			}
			return fmt.Errorf("nodequery: undeclared variable %q", c.Var)
		}
		for _, col := range relmodel.Schemas[rel] {
			if col == c.Col {
				return nil
			}
		}
		return fmt.Errorf("nodequery: relation %q has no attribute %q", rel, c.Col)
	}
	var walk func(p *Pred) error
	walk = func(p *Pred) error {
		if p == nil {
			return nil
		}
		switch p.Kind {
		case Cmp:
			if p.Left.IsCol {
				if err := check(p.Left.Col); err != nil {
					return err
				}
			}
			if p.Right.IsCol {
				if err := check(p.Right.Col); err != nil {
					return err
				}
			}
		case And, Or, Not:
			for _, k := range p.Kids {
				if err := walk(k); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, v := range q.Vars {
		if err := walk(v.Cond); err != nil {
			return err
		}
	}
	if err := walk(q.Where); err != nil {
		return err
	}
	for _, c := range q.Select {
		if err := check(c); err != nil {
			return err
		}
	}
	return nil
}

// Table is the result of evaluating a node-query at one node: the
// projected column names and the distinct result rows, in deterministic
// order.
type Table struct {
	Cols []string
	Rows [][]string
}

// Empty reports whether the table has no rows — the paper's "node contains
// no answer" condition that turns a node into a dead end.
func (t *Table) Empty() bool { return t == nil || len(t.Rows) == 0 }

// binding maps a variable name to its current tuple and relation.
type binding struct {
	rel *relmodel.Relation
	tup relmodel.Tuple
}

// Eval evaluates the node-query against the virtual relations of one
// node, with no outer environment. Queries using Outer references need
// EvalEnv.
func Eval(q *Query, db *relmodel.DB) (*Table, error) {
	return EvalEnv(q, db, nil)
}

// EvalEnv evaluates the node-query against the virtual relations of one
// node. Evaluation is a nested-loop join across the declared variables
// (document databases are tiny — the paper builds and purges them per
// query), with the such-that and where predicates as the join condition
// and a final distinct projection. outer supplies the values of Outer
// column references, keyed by their "var.col" form.
func EvalEnv(q *Query, db *relmodel.DB, outer map[string]string) (*Table, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for _, c := range q.Outer {
		if _, ok := outer[c.String()]; !ok {
			return nil, fmt.Errorf("nodequery: no environment value for outer reference %s", c)
		}
	}
	cols := make([]string, len(q.Select))
	for i, c := range q.Select {
		cols[i] = c.String()
	}
	out := &Table{Cols: cols}
	env := make(map[string]binding, len(q.Vars))

	cond := Conj(q.Where)
	var decls []*Pred
	for _, v := range q.Vars {
		decls = append(decls, v.Cond)
	}
	cond = Conj(append(decls, cond)...)

	var rec func(i int) error
	rec = func(i int) error {
		if i == len(q.Vars) {
			ok, err := evalPred(cond, env, outer)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			row := make([]string, len(q.Select))
			for j, c := range q.Select {
				v, err := lookup(c, env, outer)
				if err != nil {
					return err
				}
				row[j] = v
			}
			out.Rows = append(out.Rows, row)
			return nil
		}
		v := q.Vars[i]
		rel, err := db.Relation(v.Rel)
		if err != nil {
			return err
		}
		for _, tup := range rel.Tuples {
			env[v.Name] = binding{rel, tup}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		delete(env, v.Name)
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	out.Rows = distinct(out.Rows)
	return out, nil
}

func lookup(c ColRef, env map[string]binding, outer map[string]string) (string, error) {
	b, ok := env[c.Var]
	if !ok {
		if v, ok := outer[c.String()]; ok {
			return v, nil
		}
		return "", fmt.Errorf("nodequery: unbound variable %q", c.Var)
	}
	idx := b.rel.Col(c.Col)
	if idx < 0 {
		return "", fmt.Errorf("nodequery: relation %q has no attribute %q", b.rel.Name, c.Col)
	}
	return b.tup[idx], nil
}

func evalPred(p *Pred, env map[string]binding, outer map[string]string) (bool, error) {
	if p == nil {
		return true, nil
	}
	switch p.Kind {
	case True:
		return true, nil
	case And:
		for _, k := range p.Kids {
			ok, err := evalPred(k, env, outer)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case Or:
		for _, k := range p.Kids {
			ok, err := evalPred(k, env, outer)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case Not:
		ok, err := evalPred(p.Kids[0], env, outer)
		return !ok, err
	case Cmp:
		return evalCmp(p, env, outer)
	}
	return false, fmt.Errorf("nodequery: unknown predicate kind %d", p.Kind)
}

func evalCmp(p *Pred, env map[string]binding, outer map[string]string) (bool, error) {
	left, err := operandValue(p.Left, env, outer)
	if err != nil {
		return false, err
	}
	right, err := operandValue(p.Right, env, outer)
	if err != nil {
		return false, err
	}
	switch p.Op {
	case Contains:
		return strings.Contains(strings.ToLower(left), strings.ToLower(right)), nil
	case NotContains:
		return !strings.Contains(strings.ToLower(left), strings.ToLower(right)), nil
	}
	// Numeric comparison when both sides are numeric, else string order.
	var c int
	ln, lerr := strconv.ParseFloat(left, 64)
	rn, rerr := strconv.ParseFloat(right, 64)
	if lerr == nil && rerr == nil {
		switch {
		case ln < rn:
			c = -1
		case ln > rn:
			c = 1
		}
	} else {
		c = strings.Compare(left, right)
	}
	switch p.Op {
	case Eq:
		return c == 0, nil
	case Ne:
		return c != 0, nil
	case Lt:
		return c < 0, nil
	case Le:
		return c <= 0, nil
	case Gt:
		return c > 0, nil
	case Ge:
		return c >= 0, nil
	}
	return false, fmt.Errorf("nodequery: unknown comparison operator %d", p.Op)
}

func operandValue(o Operand, env map[string]binding, outer map[string]string) (string, error) {
	if o.IsCol {
		return lookup(o.Col, env, outer)
	}
	return o.Lit, nil
}

// distinct removes duplicate rows preserving first-occurrence order.
func distinct(rows [][]string) [][]string {
	seen := make(map[string]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := strings.Join(r, "\x00")
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// SortRows orders rows lexicographically; result tables from different
// sites arrive in arrival order, so deterministic display and tests sort.
func SortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
