package nodequery

import (
	"strings"
	"testing"
	"testing/quick"

	"webdis/internal/htmlx"
	"webdis/internal/relmodel"
)

const labPage = `<html><head><title>Database Systems Lab People</title></head>
<body>
<h2>Members</h2>
<a href="http://www.iisc.ernet.in/">IISc</a>
<a href="students.html">Students</a>
<a href="http://csa.iisc.ernet.in/">CSA</a>
CONVENER <b>Jayant Haritsa</b>
<hr>
Last updated 1999.
</body></html>`

func testDB(t *testing.T) *relmodel.DB {
	t.Helper()
	doc, err := htmlx.Parse("http://dsl.serc.iisc.ernet.in/people.html", []byte(labPage))
	if err != nil {
		t.Fatal(err)
	}
	return relmodel.Build(doc)
}

func TestEvalGlobalLinks(t *testing.T) {
	// The paper's Example Query 1 node-query: select a.base, a.href from
	// anchor a where a.ltype = "G".
	q := &Query{
		Vars:   []VarDecl{{Name: "a", Rel: "anchor"}},
		Where:  Compare(ColOperand("a", "ltype"), Eq, LitOperand("G")),
		Select: []ColRef{{"a", "base"}, {"a", "href"}},
	}
	tbl, err := Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	for _, r := range tbl.Rows {
		if r[0] != "http://dsl.serc.iisc.ernet.in/people.html" {
			t.Errorf("base = %q", r[0])
		}
	}
	if tbl.Rows[0][1] != "http://www.iisc.ernet.in/" || tbl.Rows[1][1] != "http://csa.iisc.ernet.in/" {
		t.Errorf("hrefs = %v", tbl.Rows)
	}
	if tbl.Cols[0] != "a.base" || tbl.Cols[1] != "a.href" {
		t.Errorf("cols = %v", tbl.Cols)
	}
}

func TestEvalConvenerRelInfon(t *testing.T) {
	// The paper's Example Query 2 second node-query: document d1, relinfon
	// r such that r.delimiter = "hr" where r.text contains "convener".
	q := &Query{
		Vars: []VarDecl{
			{Name: "d1", Rel: "document"},
			{Name: "r", Rel: "relinfon",
				Cond: Compare(ColOperand("r", "delimiter"), Eq, LitOperand("hr"))},
		},
		Where:  Compare(ColOperand("r", "text"), Contains, LitOperand("convener")),
		Select: []ColRef{{"d1", "url"}, {"r", "text"}},
	}
	tbl, err := Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if tbl.Rows[0][0] != "http://dsl.serc.iisc.ernet.in/people.html" {
		t.Errorf("url = %q", tbl.Rows[0][0])
	}
	if !strings.Contains(tbl.Rows[0][1], "CONVENER Jayant Haritsa") {
		t.Errorf("text = %q", tbl.Rows[0][1])
	}
}

func TestEvalTitleContains(t *testing.T) {
	q := &Query{
		Vars:   []VarDecl{{Name: "d", Rel: "document"}},
		Where:  Compare(ColOperand("d", "title"), Contains, LitOperand("lab")),
		Select: []ColRef{{"d", "url"}},
	}
	tbl, err := Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("contains should be case-insensitive: %v", tbl.Rows)
	}
}

func TestEvalEmptyResultIsDeadEnd(t *testing.T) {
	q := &Query{
		Vars:   []VarDecl{{Name: "d", Rel: "document"}},
		Where:  Compare(ColOperand("d", "title"), Contains, LitOperand("no such phrase")),
		Select: []ColRef{{"d", "url"}},
	}
	tbl, err := Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Empty() {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	var nilTable *Table
	if !nilTable.Empty() {
		t.Error("nil table should be empty")
	}
}

func TestEvalNumericComparison(t *testing.T) {
	q := &Query{
		Vars:   []VarDecl{{Name: "d", Rel: "document"}},
		Where:  Compare(ColOperand("d", "length"), Gt, LitOperand("100")),
		Select: []ColRef{{"d", "url"}},
	}
	tbl, err := Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatal("document is longer than 100 bytes; numeric compare failed")
	}
	// "99" < "100" numerically but not lexicographically.
	q.Where = Compare(LitOperand("99"), Lt, LitOperand("100"))
	tbl, err = Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatal("99 < 100 should hold numerically")
	}
}

func TestEvalBooleanOperators(t *testing.T) {
	or := &Pred{Kind: Or, Kids: []*Pred{
		Compare(ColOperand("a", "ltype"), Eq, LitOperand("G")),
		Compare(ColOperand("a", "ltype"), Eq, LitOperand("L")),
	}}
	q := &Query{
		Vars:   []VarDecl{{Name: "a", Rel: "anchor"}},
		Where:  or,
		Select: []ColRef{{"a", "href"}},
	}
	tbl, err := Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("G|L rows = %v", tbl.Rows)
	}
	q.Where = &Pred{Kind: Not, Kids: []*Pred{or}}
	tbl, err = Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 0 {
		t.Fatalf("not(G|L) rows = %v", tbl.Rows)
	}
}

func TestEvalCrossProductJoin(t *testing.T) {
	// anchor × relinfon with a join condition on the shared document URL.
	q := &Query{
		Vars: []VarDecl{
			{Name: "a", Rel: "anchor"},
			{Name: "r", Rel: "relinfon"},
		},
		Where: Conj(
			Compare(ColOperand("a", "ltype"), Eq, LitOperand("G")),
			Compare(ColOperand("r", "delimiter"), Eq, LitOperand("b")),
		),
		Select: []ColRef{{"a", "href"}, {"r", "text"}},
	}
	tbl, err := Eval(q, testDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	for _, r := range tbl.Rows {
		if r[1] != "Jayant Haritsa" {
			t.Errorf("row = %v", r)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*Query{
		{Vars: []VarDecl{{Name: "d", Rel: "nosuch"}}},
		{Vars: []VarDecl{{Name: "d", Rel: "document"}, {Name: "d", Rel: "anchor"}}},
		{Vars: []VarDecl{{Name: "", Rel: "document"}}},
		{Vars: []VarDecl{{Name: "d", Rel: "document"}},
			Select: []ColRef{{"x", "url"}}},
		{Vars: []VarDecl{{Name: "d", Rel: "document"}},
			Select: []ColRef{{"d", "nosuchcol"}}},
		{Vars: []VarDecl{{Name: "d", Rel: "document"}},
			Where:  Compare(ColOperand("d", "bogus"), Eq, LitOperand("x")),
			Select: []ColRef{{"d", "url"}}},
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: Validate() = nil, want error (%s)", i, q)
		}
	}
}

func TestQueryString(t *testing.T) {
	q := &Query{
		Vars: []VarDecl{
			{Name: "d", Rel: "document"},
			{Name: "r", Rel: "relinfon",
				Cond: Compare(ColOperand("r", "delimiter"), Eq, LitOperand("hr"))},
		},
		Where:  Compare(ColOperand("r", "text"), Contains, LitOperand("convener")),
		Select: []ColRef{{"d", "url"}, {"r", "text"}},
	}
	s := q.String()
	for _, want := range []string{"select d.url, r.text", "document d", `relinfon r such that r.delimiter = "hr"`, `where r.text contains "convener"`} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestDistinctRows(t *testing.T) {
	rows := [][]string{{"a", "b"}, {"a", "b"}, {"c", "d"}, {"a", "b"}}
	got := distinct(rows)
	if len(got) != 2 {
		t.Fatalf("distinct = %v", got)
	}
}

func TestSortRows(t *testing.T) {
	rows := [][]string{{"b"}, {"a", "z"}, {"a"}, {"a", "a"}}
	SortRows(rows)
	want := [][]string{{"a"}, {"a", "a"}, {"a", "z"}, {"b"}}
	for i := range want {
		if strings.Join(rows[i], ",") != strings.Join(want[i], ",") {
			t.Fatalf("sorted = %v", rows)
		}
	}
}

func TestConj(t *testing.T) {
	if p := Conj(nil, nil); p.Kind != True {
		t.Errorf("Conj(nil,nil) = %v", p)
	}
	c := Compare(LitOperand("a"), Eq, LitOperand("a"))
	if p := Conj(nil, c); p != c {
		t.Errorf("Conj(nil,c) should be c itself")
	}
	p := Conj(c, Conj(c, c))
	if p.Kind != And || len(p.Kids) != 3 {
		t.Errorf("Conj should flatten: %v", p)
	}
}

func TestQuickDistinctIdempotent(t *testing.T) {
	f := func(vals []string) bool {
		rows := make([][]string, len(vals))
		for i, v := range vals {
			rows[i] = []string{v}
		}
		once := distinct(rows)
		copyOnce := make([][]string, len(once))
		copy(copyOnce, once)
		twice := distinct(copyOnce)
		if len(once) != len(twice) {
			return false
		}
		seen := map[string]bool{}
		for _, r := range once {
			if seen[r[0]] {
				return false
			}
			seen[r[0]] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCmpTotalOrder(t *testing.T) {
	// Property: for any two literals exactly one of <, =, > holds under
	// evalCmp semantics.
	f := func(a, b string) bool {
		env := map[string]binding{}
		lt, _ := evalCmp(Compare(LitOperand(a), Lt, LitOperand(b)), env, nil)
		eq, _ := evalCmp(Compare(LitOperand(a), Eq, LitOperand(b)), env, nil)
		gt, _ := evalCmp(Compare(LitOperand(a), Gt, LitOperand(b)), env, nil)
		n := 0
		for _, v := range []bool{lt, eq, gt} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalEnvOuterReferences(t *testing.T) {
	// A correlated predicate: the node's title must contain the value of
	// the upstream document's title, supplied via the environment.
	q := &Query{
		Vars:   []VarDecl{{Name: "d1", Rel: "document"}},
		Where:  Compare(ColOperand("d1", "title"), Contains, ColOperand("d0", "title")),
		Select: []ColRef{{Var: "d1", Col: "url"}},
		Outer:  []ColRef{{Var: "d0", Col: "title"}},
	}
	db := testDB(t) // title "Database Systems Lab People"
	tbl, err := EvalEnv(q, db, map[string]string{"d0.title": "Systems Lab"})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	tbl, err = EvalEnv(q, db, map[string]string{"d0.title": "Compilers"})
	if err != nil {
		t.Fatal(err)
	}
	if !tbl.Empty() {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// A missing environment value is an error, not a silent false.
	if _, err := EvalEnv(q, db, nil); err == nil {
		t.Fatal("missing outer value should fail")
	}
	// An outer reference not declared in Outer still fails validation.
	q2 := &Query{
		Vars:   []VarDecl{{Name: "d1", Rel: "document"}},
		Where:  Compare(ColOperand("d1", "title"), Contains, ColOperand("d9", "title")),
		Select: []ColRef{{Var: "d1", Col: "url"}},
	}
	if err := q2.Validate(); err == nil {
		t.Fatal("undeclared outer variable should fail validation")
	}
}
