package wire

import (
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"webdis/internal/netsim"
	"webdis/internal/nodequery"
)

// framedPair returns a dialer/acceptor Framed pair over an in-memory
// netsim connection (buffered writes, so the lazy handshake ack never
// blocks a test the way net.Pipe's synchronous writes would).
func framedPair(t *testing.T, dialOpts, acceptOpts FramedOptions) (*Framed, *Framed) {
	t.Helper()
	n := netsim.New(netsim.Options{})
	ln, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	dc, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	ac, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	d, a := NewFramedOpts(dc, dialOpts), NewFramedOpts(ac, acceptOpts)
	t.Cleanup(func() { d.Close(); a.Close() })
	return d, a
}

func sampleMessages() []any {
	full := sampleClone()
	full.Env = map[string]string{"d0.url": "http://x", "d0.title": "T"}
	full.Span = SpanID{Origin: "user/query", Seq: 3}
	full.Parent = SpanID{Origin: "user/query", Seq: 1}
	full.Budget = Budget{Deadline: 99999, Hops: 7, Clones: 3, Rows: 100, Weight: 2, FirstN: 10}
	full.Frag = &PlanFrag{Version: 1, Stage: 0, Spec: sampleSpec()}
	full.Hints = []SiteStat{
		{Site: "a.example/query", Docs: 12, DocBytes: 4096, Evals: 3, RowsScanned: 40, RowsEmitted: 4, Fanout: 9},
	}
	res := &ResultMsg{
		ID:   QueryID{User: "maya", Site: "user/results", Num: 7},
		Span: SpanID{Origin: "a.example/query", Seq: 5},
		Site: "a.example/query",
		Hop:  2,
		Updates: []CHTUpdate{{
			Processed: CHTEntry{Node: "http://a/x.html", State: State{NumQ: 2, Rem: "L*1"}, Origin: "a/q", Seq: 4},
			Children:  []CHTEntry{{Node: "http://b/y.html", State: State{NumQ: 1, Rem: "G"}, Origin: "a/q", Seq: 5}},
		}},
		Tables: []NodeTable{{
			Node: "http://a/x.html", Stage: 1,
			Cols: []string{"d0.url", "d0.title"},
			Rows: [][]string{{"http://a/x.html", "Home"}, {"http://a/y.html", "About"}},
			Env:  "d0.url=http://a",
		}},
		Spawned: []SpanLink{{Span: SpanID{Origin: "a.example/query", Seq: 6}, Site: "b.example/query"}},
		Stats:   []SiteStat{{Site: "a.example/query", Docs: 2}},
		From:    "a.example/query@0",
		Inc:     3,
	}
	batch := &ResultMsg{
		ID:      QueryID{User: "maya", Site: "user/results", Num: 8},
		Reports: []Report{{Site: "a.example/query", Hop: 1}, {Site: "b.example/query", Hop: 2, Expired: true}},
		From:    "a.example/query@1",
	}
	return []any{
		full,
		res,
		batch,
		&BounceMsg{Clone: sampleClone(), Reason: "retry exhausted"},
		&ShedMsg{Clone: sampleClone(), Site: "b.example/query"},
		&StopMsg{ID: QueryID{User: "maya", Site: "user/results", Num: 7}, Reason: "first-n satisfied"},
		&FetchReq{URL: "http://a.example/x.html"},
		&FetchResp{URL: "http://a.example/x.html", Content: []byte("<html><body>hi</body></html>"), Err: ""},
		&TuneMsg{ID: QueryID{User: "maya", Site: "user/results", Num: 7}, MaxRows: 1024, MaxAgeMicros: 20000},
		&WatchMsg{Version: WatchVersion, ID: QueryID{User: "maya", Site: "user/w1", Num: 1}},
		&WatchMsg{Version: WatchVersion, ID: QueryID{User: "maya", Site: "user/w1", Num: 1}, Cancel: true},
		&DeltaMsg{
			Version: WatchVersion, ID: QueryID{User: "maya", Site: "user/w1", Num: 1},
			Site: "a.example", Seq: 3,
			Edited:  []string{"http://a.example/x.html"},
			Rewired: []string{"http://a.example/y.html", "http://a.example/z.html"},
		},
	}
}

func sampleSpec() nodequery.OutputSpec {
	return nodequery.OutputSpec{
		Cols: []nodequery.OutputCol{
			{Agg: nodequery.AggNone, Ref: nodequery.ColRef{Var: "d", Col: "url"}},
			{Agg: nodequery.AggCount, Star: true},
		},
		GroupBy: []nodequery.ColRef{{Var: "d", Col: "url"}},
		OrderBy: []nodequery.OrderKey{
			{Col: nodequery.OutputCol{Agg: nodequery.AggCount, Star: true}, Desc: true},
		},
		Limit: 10,
	}
}

// TestV2RoundTripAllKinds streams every message kind over one v2
// session, so later frames exercise intern-table references, and
// asserts byte-perfect structural round trips.
func TestV2RoundTripAllKinds(t *testing.T) {
	d, a := framedPair(t, FramedOptions{}, FramedOptions{})
	msgs := sampleMessages()
	errc := make(chan error, 1)
	go func() {
		for _, m := range msgs {
			if err := Send(d, m); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i, want := range msgs {
		got, err := Receive(a)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("message %d (%T) round trip mismatch:\nin  = %+v\nout = %+v", i, want, want, got)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if d.ver != 2 || a.ver != 2 {
		t.Errorf("negotiated versions = %d/%d, want 2/2", d.ver, a.ver)
	}
}

// TestNegotiationMatrix pins every peer pairing: v2<->v2, a v2 dialer
// against a v1-pinned acceptor, a v1-pinned dialer against a v2
// acceptor, and a plain per-dial sender against a framed acceptor.
func TestNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name                string
		dial, accept        FramedOptions
		wantDialV, wantAccV int
	}{
		{"v2-both", FramedOptions{}, FramedOptions{}, 2, 2},
		{"v1-acceptor", FramedOptions{}, FramedOptions{Accept: 1}, 1, 1},
		{"v1-dialer", FramedOptions{Offer: 1}, FramedOptions{}, 1, 1},
		{"v1-both", FramedOptions{Offer: 1}, FramedOptions{Accept: 1}, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, a := framedPair(t, tc.dial, tc.accept)
			msgs := []any{sampleClone(), &StopMsg{ID: QueryID{User: "u"}, Reason: "done"}, sampleClone()}
			errc := make(chan error, 1)
			go func() {
				for _, m := range msgs {
					if err := Send(d, m); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()
			for i, want := range msgs {
				got, err := Receive(a)
				if err != nil {
					t.Fatalf("message %d: %v", i, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("message %d mismatch over %s", i, tc.name)
				}
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			if d.ver != tc.wantDialV || a.ver != tc.wantAccV {
				t.Errorf("versions = %d/%d, want %d/%d", d.ver, a.ver, tc.wantDialV, tc.wantAccV)
			}
		})
	}
}

func TestPlainSenderToFramedAcceptor(t *testing.T) {
	n := netsim.New(netsim.Options{})
	ln, _ := n.Listen("b")
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		accepted <- c
	}()
	dc, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer dc.Close()
	a := NewFramed(<-accepted)
	defer a.Close()
	in := sampleClone()
	if err := Send(dc, in); err != nil { // plain conn: one-frame gob session
		t.Fatal(err)
	}
	got, err := Receive(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Error("plain gob frame mangled by framed acceptor")
	}
	if a.ver != 1 {
		t.Errorf("acceptor classified plain sender as v%d", a.ver)
	}
}

// TestV2TruncatedFrameTyped kills the connection mid-frame and asserts
// the typed truncation error — and that no torn frame is ever delivered.
func TestV2TruncatedFrameTyped(t *testing.T) {
	d, a := framedPair(t, FramedOptions{}, FramedOptions{})
	if err := Send(d, sampleClone()); err != nil {
		t.Fatal(err)
	}
	if _, err := Receive(a); err != nil {
		t.Fatal(err)
	}
	// Hand-write a frame header that promises 100 bytes, deliver 10, die.
	d.Conn.Write([]byte{0, 0, 0, 100, codeClone, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	d.Conn.Close()
	_, err := Receive(a)
	if err == nil {
		t.Fatal("torn frame delivered")
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// The session is now poisoned: every later receive fails fast.
	if a.Healthy() {
		t.Error("session still healthy after a torn frame")
	}
	if _, err := Receive(a); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("post-poison err = %v, want ErrPoisoned", err)
	}
}

func TestV2CorruptFrameTyped(t *testing.T) {
	for name, frame := range map[string][]byte{
		"unknown-kind":  {0, 0, 0, 2, 0xEE, 0},
		"unknown-flags": {0, 0, 0, 2, codeStop, 0x80},
		"tiny-frame":    {0, 0, 0, 1, codeStop},
		"bad-payload":   {0, 0, 0, 6, codeClone, 0, 0xFF, 0xFF, 0xFF, 0xFF},
		"trailing":      {0, 0, 0, 12, codeFetchReq, 0, 0, 1, 'x', 9, 9, 9, 9, 9, 9, 9},
	} {
		t.Run(name, func(t *testing.T) {
			d, a := framedPair(t, FramedOptions{}, FramedOptions{})
			if err := Send(d, &FetchReq{URL: "warm"}); err != nil {
				t.Fatal(err)
			}
			if _, err := Receive(a); err != nil {
				t.Fatal(err)
			}
			d.Conn.Write(frame)
			_, err := Receive(a)
			if err == nil {
				t.Fatal("corrupt frame delivered")
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTruncated) {
				t.Fatalf("err = %v, want typed corrupt/truncated", err)
			}
			if a.Healthy() {
				t.Error("session still healthy after corrupt frame")
			}
		})
	}
}

// TestSendErrorLatch poisons the sending side on a dead transport and
// asserts fail-fast sends plus pool eviction via the health check.
func TestSendErrorLatch(t *testing.T) {
	d, a := framedPair(t, FramedOptions{}, FramedOptions{})
	a.Close()
	var sendErr error
	// The buffered transport may accept a frame or two before the close
	// propagates; keep sending until the error surfaces.
	for i := 0; i < 100 && sendErr == nil; i++ {
		sendErr = Send(d, sampleClone())
		time.Sleep(time.Millisecond)
	}
	if sendErr == nil {
		t.Fatal("send to a closed peer never failed")
	}
	if d.Healthy() {
		t.Error("session still healthy after send failure")
	}
	if err := Send(d, sampleClone()); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("post-poison send err = %v, want ErrPoisoned", err)
	}
}

// TestCompressionRoundTrip pushes a result batch past compressMin and
// asserts both structural equality and a measured wire-byte reduction.
func TestCompressionRoundTrip(t *testing.T) {
	var wireBytes int
	d, a := framedPair(t, FramedOptions{OnFrame: func(kind string, w, g int) { wireBytes = w }}, FramedOptions{})
	big := &ResultMsg{ID: QueryID{User: "maya", Site: "user/results", Num: 1}}
	for i := 0; i < 64; i++ {
		tbl := NodeTable{Node: fmt.Sprintf("http://site%d/x.html", i), Cols: []string{"d0.url", "d0.text"}}
		for j := 0; j < 32; j++ {
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("http://site%d/page%d.html", i, j),
				strings.Repeat("the quick brown fox jumps over the lazy dog ", 4),
			})
		}
		big.Reports = append(big.Reports, Report{Site: "s", Tables: []NodeTable{tbl}})
	}
	raw := EncodedSize(big)
	if raw < compressMin {
		t.Fatalf("test payload too small to trigger compression: %d", raw)
	}
	errc := make(chan error, 1)
	go func() { errc <- Send(d, big) }()
	got, err := Receive(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(big, got) {
		t.Fatal("compressed round trip mismatch")
	}
	if wireBytes == 0 || wireBytes >= raw {
		t.Errorf("compressed frame = %d bytes, raw = %d: no reduction", wireBytes, raw)
	}
}

// TestInternTableBound overflows the per-direction intern cap and
// asserts frames keep round-tripping (the encoder degrades to literals).
func TestInternTableBound(t *testing.T) {
	d, a := framedPair(t, FramedOptions{}, FramedOptions{})
	in := sampleClone()
	in.Dest = nil
	for i := 0; i < maxInternEntries+100; i++ {
		in.Dest = append(in.Dest, DestNode{URL: fmt.Sprintf("http://h%d/p.html", i), Origin: "o", Seq: int64(i)})
	}
	errc := make(chan error, 1)
	go func() {
		errc <- Send(d, in)
		errc <- Send(d, in) // second frame: refs for interned, literals past the cap
	}()
	for i := 0; i < 2; i++ {
		got, err := Receive(a)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, got) {
			t.Fatalf("frame %d mismatch past intern cap", i)
		}
	}
}

// nullConn swallows writes: the encode-allocation and encode-benchmark
// sink.
type nullConn struct{ net.Conn }

func (nullConn) Write(p []byte) (int, error) { return len(p), nil }
func (nullConn) Read(p []byte) (int, error)  { return 0, io.EOF }
func (nullConn) Close() error                { return nil }
func (nullConn) SetDeadline(time.Time) error { return nil }
func (nullConn) LocalAddr() net.Addr         { return nil }
func (nullConn) RemoteAddr() net.Addr        { return nil }

// TestEncodeSteadyStateAllocs pins the tentpole's ≤2 allocs/frame
// encode budget (steady state: buffers grown, table populated).
func TestEncodeSteadyStateAllocs(t *testing.T) {
	f := &Framed{Conn: nullConn{}, ver: 2, verSet: true}
	msg := sampleClone()
	for i := 0; i < 8; i++ { // warm the buffer and intern table
		if err := Send(f, msg); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := Send(f, msg); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("steady-state encode = %.1f allocs/frame, budget is 2", allocs)
	}
}

// TestEncodedSizeMatchesWire pins EncodedSize to the bytes a fresh
// session actually puts on the wire for an uncompressed frame.
func TestEncodedSizeMatchesWire(t *testing.T) {
	var wireBytes int
	d, a := framedPair(t, FramedOptions{OnFrame: func(kind string, w, g int) { wireBytes = w }}, FramedOptions{})
	msg := sampleClone()
	errc := make(chan error, 1)
	go func() { errc <- Send(d, msg) }()
	if _, err := Receive(a); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if want := EncodedSize(msg); wireBytes != want {
		t.Errorf("first frame = %d wire bytes, EncodedSize = %d", wireBytes, want)
	}
	if EncodedSize("not a message") != 0 {
		t.Error("EncodedSize of a non-message should be 0")
	}
	tbl := &NodeTable{Node: "n", Cols: []string{"a"}, Rows: [][]string{{"x"}}}
	if TableSize(tbl) <= 0 {
		t.Error("TableSize of a non-empty table should be positive")
	}
}

// TestMeasureGobOracle checks the BytesV2Saved measurement hook: gob
// sizes are reported only under MeasureGob and exceed v2's for typical
// messages.
func TestMeasureGobOracle(t *testing.T) {
	var wire2, gob1 int
	d, a := framedPair(t, FramedOptions{MeasureGob: true, OnFrame: func(kind string, w, g int) { wire2, gob1 = w, g }}, FramedOptions{})
	errc := make(chan error, 1)
	go func() { errc <- Send(d, sampleClone()) }()
	if _, err := Receive(a); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if gob1 == 0 {
		t.Fatal("MeasureGob reported no gob size")
	}
	if wire2 >= gob1 {
		t.Errorf("v2 frame (%d bytes) not smaller than gob (%d bytes)", wire2, gob1)
	}
}

// TestV2MatchesGobOracle round-trips every sample through both codecs
// and asserts they reconstruct identical structures.
func TestV2MatchesGobOracle(t *testing.T) {
	for i, msg := range sampleMessages() {
		if _, ok := msg.(*TuneMsg); ok {
			// TuneMsg predates no gob deployment; it travels both paths
			// below like the rest.
			_ = ok
		}
		d2, a2 := framedPair(t, FramedOptions{}, FramedOptions{})
		d1, a1 := framedPair(t, FramedOptions{Offer: 1}, FramedOptions{})
		var got [2]any
		for j, pair := range []struct{ d, a *Framed }{{d2, a2}, {d1, a1}} {
			errc := make(chan error, 1)
			go func() { errc <- Send(pair.d, msg) }()
			m, err := Receive(pair.a)
			if err != nil {
				t.Fatalf("sample %d codec %d: %v", i, j, err)
			}
			if err := <-errc; err != nil {
				t.Fatal(err)
			}
			got[j] = m
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Errorf("sample %d: v2 and gob disagree:\nv2  = %+v\ngob = %+v", i, got[0], got[1])
		}
	}
}
