package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"testing"
)

// benchMessages returns the per-kind workloads the codec benchmarks
// sweep: the traversal-edge clone, a single-report result, a batched
// result (PR 5's coalesced frames), and the tiny stop control frame.
func benchMessages() map[string]any {
	batch := &ResultMsg{ID: QueryID{User: "maya", Site: "user/results", Num: 8}, From: "a.example/query@0"}
	for i := 0; i < 32; i++ {
		batch.Reports = append(batch.Reports, Report{
			Site: "a.example/query",
			Hop:  2,
			Updates: []CHTUpdate{{
				Processed: CHTEntry{Node: fmt.Sprintf("http://a/p%d.html", i), State: State{NumQ: 1, Rem: "G"}, Origin: "a/q", Seq: int64(i)},
			}},
			Tables: []NodeTable{{
				Node: fmt.Sprintf("http://a/p%d.html", i),
				Cols: []string{"d0.url"},
				Rows: [][]string{{fmt.Sprintf("http://a/p%d.html", i)}},
			}},
		})
	}
	return map[string]any{
		"Clone": sampleClone(),
		"Result": &ResultMsg{
			ID:   QueryID{User: "maya", Site: "user/results", Num: 7},
			Site: "a.example/query",
			Updates: []CHTUpdate{{
				Processed: CHTEntry{Node: "http://a/x.html", State: State{NumQ: 2, Rem: "L*1"}, Origin: "a/q", Seq: 4},
			}},
			Tables: []NodeTable{{
				Node: "http://a/x.html",
				Cols: []string{"d0.url", "d0.title"},
				Rows: [][]string{{"http://a/x.html", "Home"}},
			}},
			From: "a.example/query@0",
		},
		"ResultBatch": batch,
		"Stop":        &StopMsg{ID: QueryID{User: "maya", Site: "user/results", Num: 7}, Reason: "first-n satisfied"},
	}
}

func benchmarkEncode(b *testing.B, offer int) {
	for name, msg := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			f := &Framed{Conn: nullConn{}, opts: FramedOptions{Offer: offer}, ver: offer, verSet: true}
			if err := Send(f, msg); err != nil { // warm buffers + tables
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := Send(f, msg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncodeV2 measures steady-state v2 encoding per message type
// (persistent session: reused buffers, warm intern table).
func BenchmarkEncodeV2(b *testing.B) { benchmarkEncode(b, 2) }

// BenchmarkEncodeGob is the v1 baseline: the persistent framed-gob
// session PR 3 introduced (descriptors already sent).
func BenchmarkEncodeGob(b *testing.B) { benchmarkEncode(b, 1) }

// BenchmarkDecodeV2 measures steady-state v2 decoding: the frame
// payload is pre-encoded with a warm intern table, exactly what the
// second and later frames of a session look like.
func BenchmarkDecodeV2(b *testing.B) {
	for name, msg := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			env, err := wrap(msg)
			if err != nil {
				b.Fatal(err)
			}
			enc := newEncoder()
			code, _ := kindCode(env.Kind)
			if err := encodeEnvelope(enc, &env); err != nil { // frame 1: interns
				b.Fatal(err)
			}
			enc.buf = enc.buf[:0]
			if err := encodeEnvelope(enc, &env); err != nil { // frame 2: refs only
				b.Fatal(err)
			}
			payload := enc.buf
			dec := newDecoder()
			// Mirror the sending table: decode an interning frame once.
			first := newEncoder()
			if err := encodeEnvelope(first, &env); err != nil {
				b.Fatal(err)
			}
			dec.reset(first.buf)
			if _, err := decodeEnvelope(dec, code); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec.reset(payload)
				if _, err := decodeEnvelope(dec, code); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// repeatReader replays a gob stream's steady state: the descriptor
// prefix once, then the data segment forever — what a persistent
// framed-gob session's decoder sees from frame 2 on.
type repeatReader struct {
	head, body []byte
	off        int
	inHead     bool
}

func (r *repeatReader) Read(p []byte) (int, error) {
	if r.inHead {
		n := copy(p, r.head[r.off:])
		r.off += n
		if r.off == len(r.head) {
			r.inHead, r.off = false, 0
		}
		return n, nil
	}
	n := copy(p, r.body[r.off:])
	r.off += n
	if r.off == len(r.body) {
		r.off = 0
	}
	return n, nil
}

// BenchmarkDecodeGob is the v1 decode baseline: a persistent gob
// session decoding the same message stream (descriptors amortized away,
// as in a pooled connection).
func BenchmarkDecodeGob(b *testing.B) {
	for name, msg := range benchMessages() {
		b.Run(name, func(b *testing.B) {
			env, err := wrap(msg)
			if err != nil {
				b.Fatal(err)
			}
			var buf bytes.Buffer
			ge := gob.NewEncoder(&buf)
			if err := ge.Encode(&env); err != nil {
				b.Fatal(err)
			}
			head := append([]byte(nil), buf.Bytes()...)
			buf.Reset()
			if err := ge.Encode(&env); err != nil {
				b.Fatal(err)
			}
			body := append([]byte(nil), buf.Bytes()...)
			dec := gob.NewDecoder(&repeatReader{head: head, body: body, inHead: true})
			var sink envelope
			if err := dec.Decode(&sink); err != nil { // consume the head
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var out envelope
				if err := dec.Decode(&out); err != nil && err != io.EOF {
					b.Fatal(err)
				}
			}
		})
	}
}
