// Wire format v2: a hand-rolled, length-prefixed binary encoding for
// every message kind, replacing gob on the hot path. PR 3 showed codec
// cost dominating once connections were pooled — framed gob amortizes
// type descriptors but still reflects and allocates on every frame. The
// v2 codec writes fields directly: varint integers, per-connection
// interned string tables for the endpoint/URL/state strings that repeat
// across a session's frames, buffers reused across frames, and optional
// per-frame DEFLATE compression for large result batches.
//
// Frame layout (after the 4-byte big-endian length prefix shared with
// v1, which covers everything that follows):
//
//	byte 0   kind   (codeClone..codeDelta)
//	byte 1   flags  (bit 0: payload is DEFLATE-compressed)
//	bytes 2+ payload — the message fields in declaration order, or, when
//	         compressed, a uvarint raw payload length followed by the
//	         DEFLATE stream
//
// Integers travel as varints (zig-zag for signed fields). Booleans are
// the varints 0/1. Strings carry a uvarint tag first: 0 = literal, not
// interned; 1 = literal, receiver appends it to its table; tag ≥ 2 =
// reference to table entry tag-2. Each direction of a connection builds
// its own table (bounded, see maxInternEntries), so a session's
// repeated site names, URLs and PRE states shrink to one or two bytes
// — and decode to the *same* string value, not a fresh allocation.
// Slices and maps encode a uvarint count first; zero-length decodes as
// nil, matching gob's convention so the differential fuzzer can compare
// structures directly. Map entries are encoded in sorted key order so
// equal messages produce identical bytes.
//
// Version negotiation happens once per connection, before the first
// frame (see Framed): a v2-capable dialer writes the 4-byte hello
// {0xAE 'W' 'D' ver} and waits for the matching ack with the receiver's
// granted version. The magic first byte 0xAE can never open a v1 frame
// — maxFrame caps the length prefix's first byte at 0x04 — so an
// accepting side distinguishes hello from legacy traffic by its first
// four bytes alone, and plain per-dial senders (which never handshake)
// keep working against any receiver.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"webdis/internal/nodequery"
)

// MaxWireVersion is the newest wire format this build speaks. Version 1
// is the framed-gob seed format; version 2 is the binary codec.
const MaxWireVersion = 2

// Typed codec errors. Receive surfaces ErrTruncated when a frame ends
// before its own encoding claims it should (including a connection
// dying mid-frame), ErrCorrupt when the bytes are structurally invalid,
// and ErrPoisoned when the session was latched by an earlier failure
// (see Framed). Match with errors.Is.
var (
	ErrTruncated = errors.New("wire: truncated frame")
	ErrCorrupt   = errors.New("wire: corrupt frame")
	ErrPoisoned  = errors.New("wire: session poisoned by earlier error")
)

// v2 kind codes, one per message type.
const (
	codeClone byte = iota + 1
	codeResult
	codeBounce
	codeShed
	codeStop
	codeFetchReq
	codeFetchResp
	codeTune
	codeWatch
	codeDelta
)

// flagCompressed marks a DEFLATE-compressed payload.
const flagCompressed byte = 1 << 0

// compressMin is the smallest payload worth compressing. Only result
// frames are candidates: they carry the bulky row batches, and the
// threshold keeps the flate setup cost off every small frame.
const compressMin = 16 << 10

// Interning bounds: strings longer than maxInternLen are copied literal
// (interning them would bloat the table for little reference reuse),
// and a direction's table stops growing at maxInternEntries so an
// adversarial or just very long session cannot pin unbounded memory.
const (
	maxInternLen     = 256
	maxInternEntries = 4096
)

// maxPredDepth bounds predicate-tree recursion during decode, so a
// corrupt or hostile frame cannot overflow the stack.
const maxPredDepth = 512

func kindCode(kind string) (byte, bool) {
	switch kind {
	case KindClone:
		return codeClone, true
	case KindResult:
		return codeResult, true
	case KindBounce:
		return codeBounce, true
	case KindShed:
		return codeShed, true
	case KindStop:
		return codeStop, true
	case KindFetchReq:
		return codeFetchReq, true
	case KindFetchResp:
		return codeFetchResp, true
	case KindTune:
		return codeTune, true
	case KindWatch:
		return codeWatch, true
	case KindDelta:
		return codeDelta, true
	}
	return 0, false
}

// encoder appends v2-encoded fields to buf. It never fails; the buffer
// and intern table live as long as their connection, so steady-state
// encodes reuse both and allocate nothing beyond table growth.
type encoder struct {
	buf []byte
	tab map[string]int
}

func newEncoder() *encoder {
	return &encoder{tab: make(map[string]int)}
}

// reset drops buffered bytes and the intern table, returning the
// encoder to fresh-connection state (used by the pooled size helpers;
// connections never reset, their tables are the point).
func (e *encoder) reset() {
	e.buf = e.buf[:0]
	clear(e.tab)
}

func (e *encoder) u(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }

func (e *encoder) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

func (e *encoder) str(s string) {
	if n, ok := e.tab[s]; ok {
		e.u(uint64(n) + 2)
		return
	}
	if len(s) > 0 && len(s) <= maxInternLen && len(e.tab) < maxInternEntries {
		e.tab[s] = len(e.tab)
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) bytes(p []byte) {
	e.u(uint64(len(p)))
	e.buf = append(e.buf, p...)
}

// decoder consumes one frame's payload. Errors are sticky: the first
// malformed field latches err and every later read returns zeros, so
// per-field call sites stay unconditional. The intern table persists
// across frames (reset keeps it), mirroring the sending direction's.
type decoder struct {
	buf   []byte
	off   int
	tab   []string
	depth int
	err   error
}

func newDecoder() *decoder { return &decoder{} }

// reset points the decoder at a new frame payload, keeping the
// session's intern table.
func (d *decoder) reset(buf []byte) {
	d.buf, d.off, d.depth, d.err = buf, 0, 0, nil
}

func (d *decoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		}
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			d.fail(ErrTruncated)
		} else {
			d.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		}
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) int() int { return int(d.i()) }

func (d *decoder) bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail(ErrTruncated)
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail(fmt.Errorf("%w: bool byte %#x", ErrCorrupt, b))
		return false
	}
	return b == 1
}

// count reads a slice/map length and sanity-checks it against the bytes
// left in the frame (every element costs at least one byte), so a
// corrupt count cannot drive a huge allocation.
func (d *decoder) count() int {
	n := d.u()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.remaining()) {
		d.fail(fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrCorrupt, n, d.remaining()))
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	tag := d.u()
	if d.err != nil {
		return ""
	}
	if tag >= 2 {
		// Compare before narrowing: a huge tag would overflow int and
		// index negatively.
		if tag-2 >= uint64(len(d.tab)) {
			d.fail(fmt.Errorf("%w: string ref %d beyond table of %d", ErrCorrupt, tag-2, len(d.tab)))
			return ""
		}
		return d.tab[tag-2]
	}
	n := d.u()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail(ErrTruncated)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	if tag == 1 {
		if len(d.tab) >= maxInternEntries {
			d.fail(fmt.Errorf("%w: intern table overflow", ErrCorrupt))
			return ""
		}
		d.tab = append(d.tab, s)
	}
	return s
}

func (d *decoder) bytes() []byte {
	n := d.u()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail(ErrTruncated)
		return nil
	}
	if n == 0 {
		return nil
	}
	p := make([]byte, n)
	copy(p, d.buf[d.off:])
	d.off += int(n)
	return p
}

// finish reports the frame's decode outcome: the sticky error if any,
// or ErrCorrupt when payload bytes remain unconsumed (a well-formed
// frame is read exactly).
func (d *decoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// --- per-type encoding -------------------------------------------------

func (e *encoder) queryID(id QueryID) {
	e.str(id.User)
	e.str(id.Site)
	e.i(int64(id.Num))
}

func (d *decoder) queryID() QueryID {
	return QueryID{User: d.str(), Site: d.str(), Num: d.int()}
}

func (e *encoder) spanID(s SpanID) {
	e.str(s.Origin)
	e.i(s.Seq)
}

func (d *decoder) spanID() SpanID {
	return SpanID{Origin: d.str(), Seq: d.i()}
}

func (e *encoder) colRef(c nodequery.ColRef) {
	e.str(c.Var)
	e.str(c.Col)
}

func (d *decoder) colRef() nodequery.ColRef {
	return nodequery.ColRef{Var: d.str(), Col: d.str()}
}

func (e *encoder) colRefs(cs []nodequery.ColRef) {
	e.u(uint64(len(cs)))
	for _, c := range cs {
		e.colRef(c)
	}
}

func (d *decoder) colRefs() []nodequery.ColRef {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]nodequery.ColRef, n)
	for i := range out {
		out[i] = d.colRef()
	}
	return out
}

func (e *encoder) operand(o nodequery.Operand) {
	e.bool(o.IsCol)
	if o.IsCol {
		e.colRef(o.Col)
	} else {
		e.str(o.Lit)
	}
}

func (d *decoder) operand() nodequery.Operand {
	var o nodequery.Operand
	o.IsCol = d.bool()
	if o.IsCol {
		o.Col = d.colRef()
	} else {
		o.Lit = d.str()
	}
	return o
}

func (e *encoder) pred(p *nodequery.Pred) {
	if p == nil {
		e.buf = append(e.buf, 0)
		return
	}
	e.buf = append(e.buf, 1)
	e.u(uint64(p.Kind))
	switch p.Kind {
	case nodequery.And, nodequery.Or, nodequery.Not:
		e.u(uint64(len(p.Kids)))
		for _, k := range p.Kids {
			e.pred(k)
		}
	case nodequery.Cmp:
		e.operand(p.Left)
		e.u(uint64(p.Op))
		e.operand(p.Right)
	}
}

func (d *decoder) pred() *nodequery.Pred {
	if !d.bool() {
		return nil
	}
	d.depth++
	defer func() { d.depth-- }()
	if d.depth > maxPredDepth {
		d.fail(fmt.Errorf("%w: predicate nesting over %d", ErrCorrupt, maxPredDepth))
		return nil
	}
	p := &nodequery.Pred{Kind: nodequery.PredKind(d.u())}
	switch p.Kind {
	case nodequery.True:
	case nodequery.And, nodequery.Or, nodequery.Not:
		n := d.count()
		for i := 0; i < n; i++ {
			p.Kids = append(p.Kids, d.pred())
		}
	case nodequery.Cmp:
		p.Left = d.operand()
		p.Op = nodequery.CmpOp(d.u())
		if p.Op > nodequery.NotContains {
			d.fail(fmt.Errorf("%w: comparison op %d", ErrCorrupt, p.Op))
		}
		p.Right = d.operand()
	default:
		d.fail(fmt.Errorf("%w: predicate kind %d", ErrCorrupt, p.Kind))
		return nil
	}
	return p
}

func (e *encoder) query(q *nodequery.Query) {
	if q == nil {
		e.buf = append(e.buf, 0)
		return
	}
	e.buf = append(e.buf, 1)
	e.u(uint64(len(q.Vars)))
	for _, v := range q.Vars {
		e.str(v.Name)
		e.str(v.Rel)
		e.pred(v.Cond)
	}
	e.pred(q.Where)
	e.colRefs(q.Select)
	e.colRefs(q.Outer)
}

func (d *decoder) query() *nodequery.Query {
	if !d.bool() {
		return nil
	}
	q := &nodequery.Query{}
	n := d.count()
	if n > 0 {
		q.Vars = make([]nodequery.VarDecl, n)
		for i := range q.Vars {
			q.Vars[i] = nodequery.VarDecl{Name: d.str(), Rel: d.str(), Cond: d.pred()}
		}
	}
	q.Where = d.pred()
	q.Select = d.colRefs()
	q.Outer = d.colRefs()
	return q
}

func (e *encoder) outputCol(c nodequery.OutputCol) {
	e.u(uint64(c.Agg))
	e.bool(c.Star)
	e.colRef(c.Ref)
}

func (d *decoder) outputCol() nodequery.OutputCol {
	c := nodequery.OutputCol{Agg: nodequery.AggKind(d.u())}
	if c.Agg > nodequery.AggMax {
		d.fail(fmt.Errorf("%w: aggregate kind %d", ErrCorrupt, c.Agg))
	}
	c.Star = d.bool()
	c.Ref = d.colRef()
	return c
}

func (e *encoder) outputSpec(s *nodequery.OutputSpec) {
	e.u(uint64(len(s.Cols)))
	for _, c := range s.Cols {
		e.outputCol(c)
	}
	e.colRefs(s.GroupBy)
	e.u(uint64(len(s.OrderBy)))
	for _, k := range s.OrderBy {
		e.outputCol(k.Col)
		e.bool(k.Desc)
	}
	e.i(int64(s.Limit))
}

func (d *decoder) outputSpec() nodequery.OutputSpec {
	var s nodequery.OutputSpec
	if n := d.count(); n > 0 {
		s.Cols = make([]nodequery.OutputCol, n)
		for i := range s.Cols {
			s.Cols[i] = d.outputCol()
		}
	}
	s.GroupBy = d.colRefs()
	if n := d.count(); n > 0 {
		s.OrderBy = make([]nodequery.OrderKey, n)
		for i := range s.OrderBy {
			s.OrderBy[i] = nodequery.OrderKey{Col: d.outputCol(), Desc: d.bool()}
		}
	}
	s.Limit = d.int()
	return s
}

func (e *encoder) strs(ss []string) {
	e.u(uint64(len(ss)))
	for _, s := range ss {
		e.str(s)
	}
}

func (d *decoder) strs() []string {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.str()
	}
	return out
}

func (e *encoder) stageMsg(s *StageMsg) {
	e.str(s.PRE)
	e.query(s.Query)
	e.u(uint64(len(s.Export)))
	for _, x := range s.Export {
		e.str(x)
	}
}

func (d *decoder) stageMsg() StageMsg {
	var s StageMsg
	s.PRE = d.str()
	s.Query = d.query()
	if n := d.count(); n > 0 {
		s.Export = make([]string, n)
		for i := range s.Export {
			s.Export[i] = d.str()
		}
	}
	return s
}

func (e *encoder) budget(b Budget) {
	e.i(b.Deadline)
	e.i(int64(b.Hops))
	e.i(int64(b.Clones))
	e.i(int64(b.Rows))
	e.i(int64(b.Weight))
	e.i(int64(b.FirstN))
}

func (d *decoder) budget() Budget {
	return Budget{
		Deadline: d.i(), Hops: d.int(), Clones: d.int(),
		Rows: d.int(), Weight: d.int(), FirstN: d.int(),
	}
}

func (e *encoder) siteStat(s SiteStat) {
	e.str(s.Site)
	e.i(s.Docs)
	e.i(s.DocBytes)
	e.i(s.Evals)
	e.i(s.RowsScanned)
	e.i(s.RowsEmitted)
	e.i(s.Fanout)
}

func (d *decoder) siteStat() SiteStat {
	return SiteStat{
		Site: d.str(), Docs: d.i(), DocBytes: d.i(), Evals: d.i(),
		RowsScanned: d.i(), RowsEmitted: d.i(), Fanout: d.i(),
	}
}

func (e *encoder) siteStats(ss []SiteStat) {
	e.u(uint64(len(ss)))
	for _, s := range ss {
		e.siteStat(s)
	}
}

func (d *decoder) siteStats() []SiteStat {
	n := d.count()
	if n == 0 {
		return nil
	}
	out := make([]SiteStat, n)
	for i := range out {
		out[i] = d.siteStat()
	}
	return out
}

func (e *encoder) cloneMsg(m *CloneMsg) {
	e.queryID(m.ID)
	e.u(uint64(len(m.Dest)))
	for _, dn := range m.Dest {
		e.str(dn.URL)
		e.str(dn.Origin)
		e.i(dn.Seq)
	}
	e.str(m.Rem)
	e.i(int64(m.Base))
	e.u(uint64(len(m.Stages)))
	for i := range m.Stages {
		e.stageMsg(&m.Stages[i])
	}
	e.i(int64(m.Hops))
	e.u(uint64(len(m.Env)))
	if len(m.Env) > 0 {
		keys := make([]string, 0, len(m.Env))
		for k := range m.Env {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e.str(k)
			e.str(m.Env[k])
		}
	}
	e.spanID(m.Span)
	e.spanID(m.Parent)
	e.budget(m.Budget)
	if m.Frag != nil {
		e.buf = append(e.buf, 1)
		e.i(int64(m.Frag.Version))
		e.i(int64(m.Frag.Stage))
		e.outputSpec(&m.Frag.Spec)
	} else {
		e.buf = append(e.buf, 0)
	}
	e.siteStats(m.Hints)
}

func (d *decoder) cloneMsg() *CloneMsg {
	m := &CloneMsg{ID: d.queryID()}
	if n := d.count(); n > 0 {
		m.Dest = make([]DestNode, n)
		for i := range m.Dest {
			m.Dest[i] = DestNode{URL: d.str(), Origin: d.str(), Seq: d.i()}
		}
	}
	m.Rem = d.str()
	m.Base = d.int()
	if n := d.count(); n > 0 {
		m.Stages = make([]StageMsg, n)
		for i := range m.Stages {
			m.Stages[i] = d.stageMsg()
		}
	}
	m.Hops = d.int()
	if n := d.count(); n > 0 {
		m.Env = make(map[string]string, n)
		for i := 0; i < n; i++ {
			k := d.str()
			m.Env[k] = d.str()
		}
	}
	m.Span = d.spanID()
	m.Parent = d.spanID()
	m.Budget = d.budget()
	if d.bool() {
		m.Frag = &PlanFrag{Version: d.int(), Stage: d.int(), Spec: d.outputSpec()}
	}
	m.Hints = d.siteStats()
	return m
}

func (e *encoder) chtEntry(c CHTEntry) {
	e.str(c.Node)
	e.i(int64(c.State.NumQ))
	e.str(c.State.Rem)
	e.str(c.Origin)
	e.i(c.Seq)
}

func (d *decoder) chtEntry() CHTEntry {
	return CHTEntry{
		Node:   d.str(),
		State:  State{NumQ: d.int(), Rem: d.str()},
		Origin: d.str(),
		Seq:    d.i(),
	}
}

func (e *encoder) nodeTable(t *NodeTable) {
	e.str(t.Node)
	e.i(int64(t.Stage))
	e.u(uint64(len(t.Cols)))
	for _, c := range t.Cols {
		e.str(c)
	}
	e.u(uint64(len(t.Rows)))
	for _, row := range t.Rows {
		e.u(uint64(len(row)))
		for _, cell := range row {
			e.str(cell)
		}
	}
	e.str(t.Env)
	e.bool(t.Partial)
}

func (d *decoder) nodeTable() NodeTable {
	var t NodeTable
	t.Node = d.str()
	t.Stage = d.int()
	if n := d.count(); n > 0 {
		t.Cols = make([]string, n)
		for i := range t.Cols {
			t.Cols[i] = d.str()
		}
	}
	if n := d.count(); n > 0 {
		t.Rows = make([][]string, n)
		for i := range t.Rows {
			if rn := d.count(); rn > 0 {
				row := make([]string, rn)
				for j := range row {
					row[j] = d.str()
				}
				t.Rows[i] = row
			}
		}
	}
	t.Env = d.str()
	t.Partial = d.bool()
	return t
}

func (e *encoder) report(r *Report) {
	e.u(uint64(len(r.Updates)))
	for _, u := range r.Updates {
		e.chtEntry(u.Processed)
		e.u(uint64(len(u.Children)))
		for _, c := range u.Children {
			e.chtEntry(c)
		}
	}
	e.u(uint64(len(r.Tables)))
	for i := range r.Tables {
		e.nodeTable(&r.Tables[i])
	}
	e.bool(r.Expired)
	e.bool(r.Stopped)
	e.spanID(r.Span)
	e.str(r.Site)
	e.i(int64(r.Hop))
	e.u(uint64(len(r.Spawned)))
	for _, l := range r.Spawned {
		e.spanID(l.Span)
		e.str(l.Site)
	}
	e.siteStats(r.Stats)
}

func (d *decoder) report() Report {
	var r Report
	if n := d.count(); n > 0 {
		r.Updates = make([]CHTUpdate, n)
		for i := range r.Updates {
			r.Updates[i].Processed = d.chtEntry()
			if cn := d.count(); cn > 0 {
				r.Updates[i].Children = make([]CHTEntry, cn)
				for j := range r.Updates[i].Children {
					r.Updates[i].Children[j] = d.chtEntry()
				}
			}
		}
	}
	if n := d.count(); n > 0 {
		r.Tables = make([]NodeTable, n)
		for i := range r.Tables {
			r.Tables[i] = d.nodeTable()
		}
	}
	r.Expired = d.bool()
	r.Stopped = d.bool()
	r.Span = d.spanID()
	r.Site = d.str()
	r.Hop = d.int()
	if n := d.count(); n > 0 {
		r.Spawned = make([]SpanLink, n)
		for i := range r.Spawned {
			r.Spawned[i] = SpanLink{Span: d.spanID(), Site: d.str()}
		}
	}
	r.Stats = d.siteStats()
	return r
}

func (e *encoder) resultMsg(m *ResultMsg) {
	e.queryID(m.ID)
	flat := Report{
		Updates: m.Updates, Tables: m.Tables,
		Expired: m.Expired, Stopped: m.Stopped,
		Span: m.Span, Site: m.Site, Hop: m.Hop, Spawned: m.Spawned,
		Stats: m.Stats,
	}
	e.report(&flat)
	e.u(uint64(len(m.Reports)))
	for i := range m.Reports {
		e.report(&m.Reports[i])
	}
	e.str(m.From)
	e.i(m.Inc)
}

func (d *decoder) resultMsg() *ResultMsg {
	m := &ResultMsg{ID: d.queryID()}
	flat := d.report()
	m.Updates, m.Tables = flat.Updates, flat.Tables
	m.Expired, m.Stopped = flat.Expired, flat.Stopped
	m.Span, m.Site, m.Hop, m.Spawned = flat.Span, flat.Site, flat.Hop, flat.Spawned
	m.Stats = flat.Stats
	if n := d.count(); n > 0 {
		m.Reports = make([]Report, n)
		for i := range m.Reports {
			m.Reports[i] = d.report()
		}
	}
	m.From = d.str()
	m.Inc = d.i()
	return m
}

// encodeEnvelope writes env's message payload (no frame header).
func encodeEnvelope(e *encoder, env *envelope) error {
	switch env.Kind {
	case KindClone:
		e.cloneMsg(env.Clone)
	case KindResult:
		e.resultMsg(env.Result)
	case KindBounce:
		if env.Bounce.Clone == nil {
			return fmt.Errorf("wire: bounce without clone")
		}
		e.cloneMsg(env.Bounce.Clone)
		e.str(env.Bounce.Reason)
	case KindShed:
		if env.Shed.Clone == nil {
			return fmt.Errorf("wire: shed without clone")
		}
		e.cloneMsg(env.Shed.Clone)
		e.str(env.Shed.Site)
	case KindStop:
		e.queryID(env.Stop.ID)
		e.str(env.Stop.Reason)
	case KindFetchReq:
		e.str(env.FetchReq.URL)
	case KindFetchResp:
		e.str(env.FetchResp.URL)
		e.bytes(env.FetchResp.Content)
		e.str(env.FetchResp.Err)
	case KindTune:
		e.queryID(env.Tune.ID)
		e.i(int64(env.Tune.MaxRows))
		e.i(env.Tune.MaxAgeMicros)
	case KindWatch:
		e.i(int64(env.Watch.Version))
		e.queryID(env.Watch.ID)
		e.bool(env.Watch.Cancel)
	case KindDelta:
		e.i(int64(env.Delta.Version))
		e.queryID(env.Delta.ID)
		e.str(env.Delta.Site)
		e.i(env.Delta.Seq)
		e.strs(env.Delta.Edited)
		e.strs(env.Delta.Rewired)
	default:
		return fmt.Errorf("wire: cannot encode kind %q", env.Kind)
	}
	return nil
}

// decodeEnvelope reads the payload of a frame of the given kind code and
// returns the message, validated exactly as the gob path's unwrap.
func decodeEnvelope(d *decoder, code byte) (any, error) {
	var env envelope
	switch code {
	case codeClone:
		env = envelope{Kind: KindClone, Clone: d.cloneMsg()}
	case codeResult:
		env = envelope{Kind: KindResult, Result: d.resultMsg()}
	case codeBounce:
		env = envelope{Kind: KindBounce, Bounce: &BounceMsg{Clone: d.cloneMsg(), Reason: d.str()}}
	case codeShed:
		env = envelope{Kind: KindShed, Shed: &ShedMsg{Clone: d.cloneMsg(), Site: d.str()}}
	case codeStop:
		env = envelope{Kind: KindStop, Stop: &StopMsg{ID: d.queryID(), Reason: d.str()}}
	case codeFetchReq:
		env = envelope{Kind: KindFetchReq, FetchReq: &FetchReq{URL: d.str()}}
	case codeFetchResp:
		env = envelope{Kind: KindFetchResp, FetchResp: &FetchResp{URL: d.str(), Content: d.bytes(), Err: d.str()}}
	case codeTune:
		env = envelope{Kind: KindTune, Tune: &TuneMsg{ID: d.queryID(), MaxRows: d.int(), MaxAgeMicros: d.i()}}
	case codeWatch:
		env = envelope{Kind: KindWatch, Watch: &WatchMsg{Version: d.int(), ID: d.queryID(), Cancel: d.bool()}}
	case codeDelta:
		env = envelope{Kind: KindDelta, Delta: &DeltaMsg{
			Version: d.int(), ID: d.queryID(), Site: d.str(), Seq: d.i(),
			Edited: d.strs(), Rewired: d.strs(),
		}}
	default:
		return nil, fmt.Errorf("%w: unknown kind code %#x", ErrCorrupt, code)
	}
	if err := d.finish(); err != nil {
		return nil, err
	}
	return unwrap(&env)
}

// --- sizing helpers ----------------------------------------------------

// sizePool recycles scratch encoders for the size helpers, which run on
// cold paths (per fetched document or reduced table, not per frame).
var sizePool = sync.Pool{New: func() any { return newEncoder() }}

// EncodedSize returns the bytes msg would occupy as one uncompressed v2
// frame on a fresh connection (header included): the ground-truth wire
// cost the byte-accounting metrics book, independent of struct layout.
// Returns 0 for types that cannot travel.
func EncodedSize(msg any) int {
	env, err := wrap(msg)
	if err != nil {
		return 0
	}
	e := sizePool.Get().(*encoder)
	e.reset()
	n := 0
	if encodeEnvelope(e, &env) == nil {
		n = frameHeaderLen + len(e.buf)
	}
	sizePool.Put(e)
	return n
}

// TableSize returns the encoded v2 size of one result table — the
// measure the planner's PushdownBytesSaved counter uses to report what
// a pushed-down reduction actually removed from the wire.
func TableSize(t *NodeTable) int {
	e := sizePool.Get().(*encoder)
	e.reset()
	e.nodeTable(t)
	n := len(e.buf)
	sizePool.Put(e)
	return n
}

// gobSize returns the framed-gob (v1, fresh stream) encoding size of the
// envelope — the oracle the BytesV2Saved accounting compares against.
// Gob is expensive; this runs only under FramedOptions.MeasureGob.
func gobSize(env *envelope) int {
	var buf bytes.Buffer
	if err := gobEncode(&buf, env); err != nil {
		return 0
	}
	return 4 + buf.Len()
}

// --- compression -------------------------------------------------------

var (
	flateWPool sync.Pool // *flate.Writer
	flateRPool sync.Pool // io.ReadCloser implementing flate.Resetter
)

// compressPayload deflates payload into dst (appended after dst's
// existing header bytes, which the caller laid down), preceded by the
// uvarint raw length. Returns false when compression would not shrink
// the frame — the caller then discards dst and sends the raw frame.
func compressPayload(dst *bytes.Buffer, payload []byte) bool {
	var lenbuf [binary.MaxVarintLen64]byte
	dst.Write(lenbuf[:binary.PutUvarint(lenbuf[:], uint64(len(payload)))])
	fw, _ := flateWPool.Get().(*flate.Writer)
	if fw == nil {
		fw, _ = flate.NewWriter(dst, flate.BestSpeed)
	} else {
		fw.Reset(dst)
	}
	_, werr := fw.Write(payload)
	cerr := fw.Close()
	flateWPool.Put(fw)
	if werr != nil || cerr != nil {
		return false
	}
	return dst.Len() < frameHeaderLen+len(payload)
}

// inflatePayload inflates a compressed payload (uvarint raw length then
// DEFLATE stream) into dst, growing it as needed.
func inflatePayload(payload, dst []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: compressed frame length", ErrCorrupt)
	}
	if rawLen > maxFrame {
		return nil, fmt.Errorf("%w: inflated frame of %d bytes exceeds limit", ErrCorrupt, rawLen)
	}
	if cap(dst) < int(rawLen) {
		dst = make([]byte, rawLen)
	}
	dst = dst[:rawLen]
	fr, _ := flateRPool.Get().(io.ReadCloser)
	if fr == nil {
		fr = flate.NewReader(bytes.NewReader(payload[n:]))
	} else {
		fr.(flate.Resetter).Reset(bytes.NewReader(payload[n:]), nil)
	}
	defer flateRPool.Put(fr)
	if _, err := io.ReadFull(fr, dst); err != nil {
		return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
	}
	// A trailing byte means the stream encoded more than it declared.
	var one [1]byte
	if n, _ := fr.Read(one[:]); n != 0 {
		return nil, fmt.Errorf("%w: inflated frame longer than declared", ErrCorrupt)
	}
	return dst, nil
}
