// Package wire defines the messages that WEBDIS components exchange and
// their encoding. The original system forwarded web-query objects between
// Java daemons using Java object serialization; this reproduction uses
// length-prefixed gob frames over any net.Conn, so the same messages flow
// over the simulated fabric and over TCP.
//
// Three conversations use these messages:
//
//   - user-site → query-server: CloneMsg, the web-query clone of Figures 3
//     and 4 (also query-server → query-server when forwarding);
//   - query-server → user-site: ResultMsg, carrying node-query results
//     together with the CHT additions of the Current Hosts Table protocol
//     (Section 2.7.1) — shipped together per optimization 3 of Section 3.2;
//   - user-site/query-server → document host: FetchReq/FetchResp, used by
//     the centralized data-shipping baseline to download documents.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"

	"webdis/internal/netsim"
	"webdis/internal/nodequery"
)

// QueryID globally identifies a user query (paper Section 4.1): the user's
// name, the transport endpoint of the user-site's Result Collector (the
// paper's IP address + listening port number), and a locally unique query
// number.
type QueryID struct {
	User string
	Site string // result-collector endpoint name
	Num  int
}

func (id QueryID) String() string {
	return fmt.Sprintf("%s@%s#%d", id.User, id.Site, id.Num)
}

// SpanID identifies one clone message in a query's causal trace: the
// endpoint that created the message and a sequence number unique at that
// origin. The zero SpanID means the message is untraced. Span ids ride on
// every CloneMsg (and are echoed on ResultMsg) so that the user-site — or
// the deployment-level collector — can stitch the full clone tree back
// together from site-local journals (package trace).
type SpanID struct {
	Origin string // endpoint that created the clone message
	Seq    int64  // unique per origin
}

// IsZero reports whether the span id is unset (tracing off).
func (s SpanID) IsZero() bool { return s.Origin == "" && s.Seq == 0 }

func (s SpanID) String() string {
	if s.IsZero() {
		return "-"
	}
	return fmt.Sprintf("%s#%d", s.Origin, s.Seq)
}

// SpanLink names one clone spawned while processing a traced clone: its
// span id and the site it was forwarded to. ResultMsg carries the links
// so the user-site can stitch the causal tree from reports alone, even
// over TCP where the remote site journals are not directly readable.
type SpanLink struct {
	Span SpanID
	Site string // destination site of the spawned clone
}

// State is the processing state of a query clone as defined in Section
// 2.7.1: the number of node-queries still to be processed and the
// remaining part of the current PRE (as its canonical string).
type State struct {
	NumQ int
	Rem  string
}

func (s State) String() string { return fmt.Sprintf("(%d, %s)", s.NumQ, s.Rem) }

// Key returns a map key identifying the state.
func (s State) Key() string { return fmt.Sprintf("%d|%s", s.NumQ, s.Rem) }

// StageMsg is one (PRE, node-query) stage of a web-query in transit.
// Export lists the document columns the stage contributes to the clone
// environment when it advances (correlated stages).
type StageMsg struct {
	PRE    string
	Query  *nodequery.Query
	Export []string
}

// CloneMsg is a web-query clone in transit. It carries only the remaining
// stages (the query is "successively shortened"): Stages[0] is the current
// stage, with Rem — not Stages[0].PRE — as the still-to-be-satisfied part
// of its PRE. Base is the index of Stages[0] in the original query, used
// to label results. Dest lists the node URLs at the destination site that
// the clone applies to (optimization 4 of Section 3.2: one message per
// site, many destination nodes).
type CloneMsg struct {
	ID     QueryID
	Dest   []DestNode
	Rem    string
	Base   int
	Stages []StageMsg
	Hops   int // links traversed so far; for traces and response-time stats
	// Env carries upstream document bindings ("var.col" -> value) for
	// correlated stages (see nodequery.Query.Outer). Clones with different
	// environments are different clones: the log table and the batcher
	// both key on EnvKey.
	Env map[string]string
	// Span identifies this clone message in the query's causal trace and
	// Parent the clone message it was forwarded from (zero for a root
	// dispatch). Zero Span means tracing is off for this message.
	Span   SpanID
	Parent SpanID
	// Budget is the query's resource budget, inherited (and decremented)
	// by every clone spawned from this one. The zero Budget is unlimited.
	Budget Budget
	// Frag, when non-nil, is the plan fragment the cost-based planner
	// pushed into this clone: the output spec whose partial form every
	// site applies to the named stage's raw rows before shipping them.
	// Children inherit it unchanged. Sites ignore fragments whose
	// Version they do not know.
	Frag *PlanFrag
	// Hints carries site statistics the sender had observed or been told
	// about (piggybacked from result frames), so downstream sites can
	// make ship-query-vs-ship-data decisions about edges they have never
	// seen. Bounded to MaxHints entries; children inherit the merge of
	// the clone's hints and the forwarder's own observations.
	Hints []SiteStat
}

// PlanFragVersion is the current plan-fragment format. Encoded in every
// PlanFrag; servers apply only fragments whose version they recognize,
// so a mixed-version deployment degrades to naive shipping rather than
// mis-folding rows.
const PlanFragVersion = 1

// MaxHints bounds the piggybacked statistics list on clones and
// reports.
const MaxHints = 64

// PlanFrag is a pushed-down plan fragment riding a clone: the final
// stage's output spec, which a site turns into a partial hash-aggregate
// (or per-node top-K) over that stage's result rows before they ship.
// Gob-plain data, like the node-queries it travels beside.
type PlanFrag struct {
	Version int
	Stage   int // index of the stage the fragment transforms (the final stage)
	Spec    nodequery.OutputSpec
}

// Applies reports whether the fragment is one this build understands
// and targets the given stage.
func (f *PlanFrag) Applies(stage int) bool {
	return f != nil && f.Version == PlanFragVersion && f.Stage == stage
}

// SiteStat is one site's observed workload statistics: the planner's
// raw material. Sites attach their own stat to result frames
// (Report.Stats); the user-site accumulates them across queries and
// re-attaches them to later clones as CloneMsg.Hints, closing the
// feedback loop the paper's cost model needs.
type SiteStat struct {
	Site        string
	Docs        int64 // documents parsed into virtual relations
	DocBytes    int64 // raw content bytes of those documents
	Evals       int64 // node-query evaluations run
	RowsScanned int64 // tuples read by the operator pipeline
	RowsEmitted int64 // distinct rows produced
	Fanout      int64 // forward targets observed (link fan-out)
}

// AvgDocBytes returns the mean observed document size, or 0 when the
// site has parsed nothing yet (the "no statistics" cold start that
// defaults the planner to ship-query).
func (s SiteStat) AvgDocBytes() int64 {
	if s.Docs == 0 {
		return 0
	}
	return s.DocBytes / s.Docs
}

// MergeStat folds b into a (same site): counters add.
func MergeStat(a, b SiteStat) SiteStat {
	a.Docs += b.Docs
	a.DocBytes += b.DocBytes
	a.Evals += b.Evals
	a.RowsScanned += b.RowsScanned
	a.RowsEmitted += b.RowsEmitted
	a.Fanout += b.Fanout
	return a
}

// Budget carries a query's resource limits on the wire, following the
// per-query hop/time budgets that federated-search mediators and the DXQ
// network spec treat as first-class protocol elements. Each clone
// inherits its parent's budget with the consumed portion subtracted, so
// enforcement is local: a site can terminate an expired or exhausted
// clone without any coordination beyond the typed EXPIRED retirement
// that keeps CHT accounting exact.
//
// The quota fields use a three-way sentinel convention: positive means
// remaining quota, zero means unlimited (so the zero Budget changes
// nothing), and negative means exhausted — needed because decrementing a
// quota of 1 must not land on the "unlimited" zero.
type Budget struct {
	// Deadline is the absolute wall-clock deadline in Unix nanoseconds
	// (0 = none). Absolute rather than relative so it survives
	// forwarding without per-hop clock arithmetic; sites share the
	// simulated deployment's clock.
	Deadline int64
	// Hops is the remaining hop quota: how many more links the query may
	// traverse below this clone.
	Hops int
	// Clones is the remaining clone-spawn quota: how many more clone
	// messages the whole subtree below this clone may create. A parent
	// divides its remaining quota among the clones it spawns.
	Clones int
	// Rows is the remaining result-row quota for the subtree.
	Rows int
	// Weight is the query's scheduling weight (0 = default weight 1):
	// its share of a site's service under weighted fair queueing.
	Weight int
	// FirstN asks for the first N result rows only: once the user-site
	// has merged N rows it broadcasts a StopMsg along the CHT's live
	// entries, actively terminating in-flight clones with typed STOPPED
	// fates (versus the row quota Rows, which merely clips rows
	// server-side while the traversal runs to completion). FirstN is
	// enforced at the user-site; it rides the wire so ablations can
	// compare the two policies with identical budgets. 0 means no limit.
	FirstN int
}

// IsZero reports whether the budget is entirely unlimited.
func (b Budget) IsZero() bool {
	return b.Deadline == 0 && b.Hops == 0 && b.Clones == 0 && b.Rows == 0 &&
		b.Weight == 0 && b.FirstN == 0
}

// ExpiredAt reports whether the deadline has passed at the given time.
func (b Budget) ExpiredAt(now int64) bool {
	return b.Deadline != 0 && now > b.Deadline
}

// Spend returns the budget a child clone inherits after one hop: the hop
// quota decremented (1 spends to -1, exhausted, never to the unlimited
// 0). Deadline, Rows, Clones and Weight carry over; callers divide the
// clone quota separately because it is split among siblings, not
// inherited whole.
func (b Budget) Spend() Budget {
	if b.Hops > 0 {
		if b.Hops == 1 {
			b.Hops = -1
		} else {
			b.Hops--
		}
	}
	return b
}

// EnvKey returns a canonical fingerprint of an environment, used in
// log-table and batching keys. The empty environment yields "".
func EnvKey(env map[string]string) string {
	if len(env) == 0 {
		return ""
	}
	keys := make([]string, 0, len(env))
	for k := range env {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(env[k])
		b.WriteByte('\x00')
	}
	return b.String()
}

// ParseEnvKey inverts EnvKey: it rebuilds the environment map from the
// canonical fingerprint. Values produced by EnvKey never contain the
// \x00 separator (environment values are document column strings), so
// the split is unambiguous. Returns nil for "".
func ParseEnvKey(key string) map[string]string {
	if key == "" {
		return nil
	}
	env := make(map[string]string)
	for _, pair := range strings.Split(strings.TrimSuffix(key, "\x00"), "\x00") {
		if eq := strings.IndexByte(pair, '='); eq >= 0 {
			env[pair[:eq]] = pair[eq+1:]
		}
	}
	return env
}

// DestNode is one destination node of a clone message, tagged with the
// serial of its CHT entry. The paper identifies CHT entries by (URL,
// query-state) alone; that under-identifies clone instances — a revisit
// loop can put two identically keyed entries in flight whose additions
// and retirements interleave into a false "all retired" reading — so this
// implementation gives every forwarded clone instance a unique
// (origin, seq) serial that the processing server echoes back in its
// report (see the client package's completion-soundness discussion).
type DestNode struct {
	URL    string
	Origin string // endpoint that created the CHT entry
	Seq    int64  // unique per origin
}

// State returns the clone's CHT state (num_q, rem).
func (c *CloneMsg) State() State {
	return State{NumQ: len(c.Stages), Rem: c.Rem}
}

// CHTEntry names one clone instance currently hosted at a node, with the
// clone's state — one row of the user-site's Current Hosts Table. Origin
// and Seq uniquely identify the instance (see DestNode).
type CHTEntry struct {
	Node   string
	State  State
	Origin string
	Seq    int64
}

// Key returns the CHT map key: node, state and instance serial.
func (e CHTEntry) Key() string {
	return fmt.Sprintf("%s§%s§%s§%d", e.Node, e.State.Key(), e.Origin, e.Seq)
}

// CHTUpdate reports the processing of one node: the entry being retired
// (the "topmost entry" the user-site marks deleted) and the entries for
// the clones forwarded from it (merged into the table).
type CHTUpdate struct {
	Processed CHTEntry
	Children  []CHTEntry
}

// NodeTable carries the rows a node-query produced at one node.
type NodeTable struct {
	Node  string
	Stage int // index of the node-query in the original web-query
	Cols  []string
	Rows  [][]string
	// Env is the EnvKey of the clone environment the rows were computed
	// under. One (Node, Stage, Env) triple is one *contribution*: its
	// rows are deterministic, so the user-site deduplicates whole
	// contributions when folding aggregates. Empty on frames from
	// pre-planner builds, which never carry Partial tables either.
	Env string
	// Partial marks rows that are partial-aggregate state produced by a
	// pushed-down PlanFrag (group keys then one state cell per
	// aggregate) rather than raw result rows.
	Partial bool
}

// Report is the outcome of processing one CloneMsg: its results, CHT
// updates and span context. It is the unit the server-side result
// batcher coalesces — a batched ResultMsg carries many Reports in one
// frame, each applied independently at the user-site.
type Report struct {
	Updates []CHTUpdate
	Tables  []NodeTable
	// Expired marks a report whose entries were retired because the
	// clone exceeded its Budget (deadline or quota) rather than being
	// processed: the typed EXPIRED terminate. The CHT arithmetic is
	// identical — entries retire, no children — but the user-site
	// records the spans as expired, not processed, so trace fates
	// reconcile exactly.
	Expired bool
	// Stopped marks a report whose entries were retired because the
	// user-site broadcast a StopMsg (active early termination): the
	// typed STOPPED terminate, same CHT arithmetic as Expired.
	Stopped bool
	// Span is the span of the clone message whose processing produced
	// this report (zero when untraced); Site and Hop locate it.
	Span SpanID
	Site string
	Hop  int
	// Spawned lists the clone messages forwarded during that processing.
	Spawned []SpanLink
	// Stats piggybacks the processing site's observed statistics (and
	// any peers' it learned of) back to the user-site. Attached only
	// when the planner is enabled, so classic deployments keep their
	// exact wire profile.
	Stats []SiteStat
}

// Rows returns the number of result rows the report carries (the size
// measure the batcher's MaxRows bound counts).
func (r *Report) Rows() int {
	n := 0
	for _, t := range r.Tables {
		n += len(t.Rows)
	}
	return n
}

// ResultMsg is the query-server → user-site message: all results and CHT
// updates from processing one CloneMsg, batched (Section 3.2, item 3).
// For traced clones it also carries the span context of the processed
// clone and the spans of the clones spawned from it, so the user-site can
// stitch the causal tree without reading remote journals.
//
// Two layouts share the struct: the classic one-report-per-message form
// uses the flat fields directly (the seed wire format), and the batched
// form (ServerOptions.ResultBatch) leaves those zero and carries the
// coalesced Reports slice instead. Receivers iterate with Each and never
// look at the layout.
type ResultMsg struct {
	ID      QueryID
	Updates []CHTUpdate
	Tables  []NodeTable
	// Expired and Stopped type the retirement (see Report).
	Expired bool
	Stopped bool
	// Span is the span of the clone message whose processing produced
	// this report (zero when untraced); Site and Hop locate it.
	Span SpanID
	Site string
	Hop  int
	// Spawned lists the clone messages forwarded during that processing.
	Spawned []SpanLink
	// Reports, when non-empty, is a size/age-bounded batch of reports
	// from distinct clone processings at one site, coalesced into this
	// single frame by the server's result batcher. The flat fields above
	// are then zero.
	Reports []Report
	// From and Inc identify the replica that produced the report when
	// the deployment is replicated: the replica's listen endpoint and
	// its registration incarnation. The user-site drops frames whose
	// incarnation is older than the membership's current one for that
	// endpoint — a restarted replica's stale in-flight replies must not
	// retire entries the new incarnation re-announces. Both zero on
	// unreplicated deployments, which accept every frame as before.
	From string
	Inc  int64
	// Stats is the flat-form counterpart of Report.Stats.
	Stats []SiteStat
}

// Each visits every report the message carries — the batched Reports
// when present, otherwise the flat single-report fields.
func (m *ResultMsg) Each(fn func(*Report)) {
	if len(m.Reports) > 0 {
		for i := range m.Reports {
			fn(&m.Reports[i])
		}
		return
	}
	fn(&Report{
		Updates: m.Updates, Tables: m.Tables,
		Expired: m.Expired, Stopped: m.Stopped,
		Span: m.Span, Site: m.Site, Hop: m.Hop, Spawned: m.Spawned,
		Stats: m.Stats,
	})
}

// FetchReq asks a document host for the content of one URL. It is used
// only by the centralized data-shipping baseline — the distributed engine
// never moves document bytes off their home site.
type FetchReq struct {
	URL string
}

// FetchResp returns the raw document bytes, or an error string for an
// unknown URL.
type FetchResp struct {
	URL     string
	Content []byte
	Err     string
}

// BounceMsg returns an undeliverable clone to the user-site. Reason says
// why: BounceNoServer when the destination site runs no query server (the
// paper's Section 7.1 migration path), BounceRetryExhausted when the site
// should be reachable but every forward attempt failed (fault-tolerant
// degraded mode: the engine falls back from query shipping to data
// shipping for that one edge). The user-site's fallback then processes
// the clone centrally — fetching the documents and evaluating locally —
// and re-enters distributed mode at the next participating site.
type BounceMsg struct {
	Clone  *CloneMsg
	Reason string
}

// Bounce reasons.
const (
	BounceNoServer       = "no-server"
	BounceRetryExhausted = "retry-exhausted"
)

// ShedMsg returns a refused clone to the user-site: the typed SHED
// bounce of admission control, distinct from the fault-path BounceMsg.
// A bounced clone is still owed processing (the fallback evaluates it
// centrally); a shed clone is refused outright — the site was over its
// high watermark and declined to start a NEW query. The user-site
// retires the clone's CHT entries and surfaces Query.Shed so the caller
// can retry later, rather than silently absorbing the refusal into the
// degraded-mode path.
type ShedMsg struct {
	Clone *CloneMsg
	Site  string // site that refused the clone
}

// TuneMsg is the user-site → query-server feedback of the adaptive
// result batcher: the observed consumer backpressure asks the site to
// re-bound its per-query result batching. MaxRows and MaxAgeMicros
// override the server's configured BatchOptions for this query; zero
// values revert to the configured defaults. A slow consumer (deep
// ConsumerLag) asks for large, late frames — fewer messages, better
// compression — while a caught-up consumer asks the bounds back down so
// first-row latency stays low. Servers without batching enabled ignore
// the message; it is advisory, so mixed deployments interoperate.
type TuneMsg struct {
	ID           QueryID
	MaxRows      int
	MaxAgeMicros int64
}

// StopMsg is the user-site → query-server active-termination signal: the
// user has enough answers (Budget.FirstN satisfied, or the submitting
// context was cancelled), so still-running clones of the query should
// terminate now instead of starving passively against a closed collector
// (paper Section 2.8). A server receiving it marks the query stopped;
// queued and later-arriving clones of that query retire their CHT entries
// with typed STOPPED reports — no evaluation, no children — so the query
// still completes exactly through the CHT, just sooner and cheaper.
// Reason is free text for traces ("first-n satisfied", "ctx cancelled").
type StopMsg struct {
	ID     QueryID
	Reason string
}

// WatchVersion is the current watch-protocol format. Encoded in every
// WatchMsg and DeltaMsg so mixed-version deployments degrade cleanly
// (the PlanFrag precedent): a server that does not understand the
// version ignores the registration, a client drops deltas it cannot
// parse, and one-shot queries are untouched either way.
const WatchVersion = 1

// WatchMsg registers (or cancels) a standing query at a query server:
// the user-site asks to be notified whenever the site's documents
// change. ID names the watch; ID.Site is the endpoint DeltaMsg
// notifications are delivered to — the watch's own collector, exactly
// like a query's Result Collector.
type WatchMsg struct {
	Version int
	ID      QueryID
	// Cancel deregisters the watch instead.
	Cancel bool
}

// Applies reports whether the message is of a version this build
// understands.
func (m *WatchMsg) Applies() bool { return m != nil && m.Version == WatchVersion }

// DeltaMsg is the site → user-site change notification of a registered
// watch: the web mutated at this site, and the named documents' virtual
// relations are no longer what the watch last saw. Seq is a monotonic
// per-watch, per-site sequence number. Edited lists documents whose
// content changed but whose outgoing links are intact (re-evaluation of
// the documents themselves suffices); Rewired lists documents whose link
// structure changed or that disappeared (the PRE frontiers reachable
// through them need re-traversal). The user-site's Watch coalesces
// notifications and re-dispatches only the affected frontiers, then
// emits typed add/remove row deltas with its own monotonic epoch.
type DeltaMsg struct {
	Version int
	ID      QueryID
	Site    string
	Seq     int64
	Edited  []string
	Rewired []string
}

// Applies reports whether the message is of a version this build
// understands.
func (m *DeltaMsg) Applies() bool { return m != nil && m.Version == WatchVersion }

// Message kind strings, used for per-kind traffic accounting.
const (
	KindClone     = "clone"
	KindResult    = "result"
	KindBounce    = "bounce"
	KindShed      = "shed"
	KindStop      = "stop"
	KindFetchReq  = "fetch-req"
	KindFetchResp = "fetch-resp"
	KindTune      = "tune"
	KindWatch     = "watch"
	KindDelta     = "delta"
)

// envelope wraps every message so a single gob stream can carry any kind.
type envelope struct {
	Kind      string
	Clone     *CloneMsg
	Result    *ResultMsg
	Bounce    *BounceMsg
	Shed      *ShedMsg
	Stop      *StopMsg
	FetchReq  *FetchReq
	FetchResp *FetchResp
	Tune      *TuneMsg
	Watch     *WatchMsg
	Delta     *DeltaMsg
}

// wrap classifies msg into its envelope, the shared front half of Send
// and the size helpers.
func wrap(msg any) (envelope, error) {
	switch m := msg.(type) {
	case *CloneMsg:
		return envelope{Kind: KindClone, Clone: m}, nil
	case *ResultMsg:
		return envelope{Kind: KindResult, Result: m}, nil
	case *BounceMsg:
		return envelope{Kind: KindBounce, Bounce: m}, nil
	case *ShedMsg:
		return envelope{Kind: KindShed, Shed: m}, nil
	case *StopMsg:
		return envelope{Kind: KindStop, Stop: m}, nil
	case *FetchReq:
		return envelope{Kind: KindFetchReq, FetchReq: m}, nil
	case *FetchResp:
		return envelope{Kind: KindFetchResp, FetchResp: m}, nil
	case *TuneMsg:
		return envelope{Kind: KindTune, Tune: m}, nil
	case *WatchMsg:
		return envelope{Kind: KindWatch, Watch: m}, nil
	case *DeltaMsg:
		return envelope{Kind: KindDelta, Delta: m}, nil
	}
	return envelope{}, fmt.Errorf("wire: cannot send %T", msg)
}

// maxFrame bounds a frame to guard against corrupt length prefixes.
const maxFrame = 64 << 20

// frameHeaderLen is the v2 frame header: 4-byte length prefix plus the
// kind and flags bytes the length covers.
const frameHeaderLen = 6

// helloMagic opens the 4-byte version hello and ack. The first byte is
// deliberately above maxFrame's high byte (0x04), so it can never be
// confused with a v1 length prefix.
var helloMagic = [3]byte{0xAE, 'W', 'D'}

// FramedOptions configure a framed session's wire version and
// instrumentation. The zero value offers and accepts the newest format
// (v2, the binary codec), falling back per connection when the peer
// does not.
type FramedOptions struct {
	// Offer is the highest wire version this side proposes when it sends
	// first on the connection (the dialing side). 0 means MaxWireVersion;
	// 1 pins classic framed gob and sends no handshake at all, so v1
	// deployments keep their exact wire profile.
	Offer int
	// Accept caps the version granted to a peer's hello when this side
	// receives first (the accepting side). 0 means MaxWireVersion; 1
	// answers every hello with v1, pinning the session to gob.
	Accept int
	// OnFrame, when set, observes every v2 frame sent: its kind, the
	// bytes it occupied on the wire (after compression), and — only when
	// MeasureGob is set — the bytes the same message would have cost as a
	// fresh gob frame (else 0). Used by the BytesV2Saved accounting.
	OnFrame func(kind string, wireBytes, gobBytes int)
	// MeasureGob arms the gob-size oracle for OnFrame. It re-encodes
	// every sent message with gob, so it is strictly a measurement mode.
	MeasureGob bool
}

func (o FramedOptions) offer() int {
	return clampVersion(o.Offer)
}

func (o FramedOptions) accept() int {
	return clampVersion(o.Accept)
}

func clampVersion(v int) int {
	if v <= 0 || v > MaxWireVersion {
		return MaxWireVersion
	}
	return v
}

// Framed wraps a connection with a persistent wire session. The session
// negotiates its format version once, before the first frame:
//
//   - A dialer offering v2 writes the 4-byte hello {0xAE 'W' 'D' ver}
//     pipelined with its first frame — always encoded at version 2, the
//     baseline every hello-capable peer decodes — in a single write, so
//     the handshake adds no round trip and no extra fault-injection
//     draw to first delivery. The 4-byte ack carrying the granted
//     version (min of offered and accepted) is read lazily before the
//     second frame; the session speaks the granted version from then on.
//   - A receiver classifies the connection by its first four bytes: the
//     hello magic starts a handshake — the pipelined frame is decoded
//     first and the ack written only after it arrives whole, so a lost
//     ack can never lose a frame that was in fact delivered. Anything
//     else must be a v1 length prefix (maxFrame caps its first byte at
//     0x04), so the session is gob and those four bytes are replayed as
//     the first frame's prefix. Plain per-dial senders and v1-pinned
//     peers therefore interoperate unchanged, with no handshake on the
//     wire.
//
// Version 2 frames carry the hand-rolled binary codec (see codec.go);
// version 1 keeps the persistent gob session of PR 3, whose type
// descriptors travel once per connection.
//
// A Framed connection is a session with an error latch: the first Send
// or Receive failure — including a short read mid-frame — poisons it,
// and every later call fails fast with ErrPoisoned wrapping the original
// error. A poisoned session reports Healthy() == false, which the
// connection pool checks before re-pooling, so a torn frame can never be
// followed by a delivery on the same connection. One goroutine sends and
// one receives; neither method is safe for concurrent use with itself.
//
// Interop: a sender using plain Send opens a fresh gob stream per frame,
// which a Framed receiver handles (each dial-per-message connection is a
// one-frame v1 session). The reverse — plain Receive of a Framed
// sender's second frame — does not work, so receivers wrap first,
// senders only ever reuse connections through a pool that wraps.
type Framed struct {
	net.Conn
	opts FramedOptions

	// ver is the negotiated wire version; verSet latches once the
	// version is settled: immediately for v1 offers and classified
	// receivers, at ack time for hello-sending dialers.
	ver    int
	verSet bool
	// txHello records that the hello went out pipelined with the first
	// frame; the granted-version ack is read lazily before the second
	// frame, so the handshake adds no round trip to first delivery.
	txHello bool
	// rxAckOwed is the granted version this side still owes the dialer;
	// it is written only after the pipelined first frame decodes, so a
	// lost ack can never lose a frame that was in fact delivered.
	rxAckOwed byte
	// rxFirstV2 marks that the next inbound frame is the pipelined one,
	// which is always encoded at version 2 regardless of the grant.
	rxFirstV2 bool

	// v1 session state: persistent gob codec over length-prefixed frames.
	encBuf bytes.Buffer
	enc    *gob.Encoder
	fr     frameReader
	dec    *gob.Decoder

	// v2 session state: per-direction codecs with interned string tables,
	// plus reusable frame buffers (send, receive, inflate, compress).
	enc2 *encoder
	dec2 *decoder
	rbuf []byte
	dbuf []byte
	cbuf bytes.Buffer

	failMu sync.Mutex
	fail   error
}

// NewFramed wraps conn in a persistent wire session with default
// options (offer and accept the newest version); wrapping a Framed
// connection returns it unchanged.
func NewFramed(conn net.Conn) *Framed {
	return NewFramedOpts(conn, FramedOptions{})
}

// NewFramedOpts wraps conn in a persistent wire session configured by
// opts. Wrapping a Framed connection returns it unchanged, keeping its
// original options — sessions negotiate once and never change shape.
func NewFramedOpts(conn net.Conn, opts FramedOptions) *Framed {
	if f, ok := conn.(*Framed); ok {
		return f
	}
	return &Framed{Conn: conn, opts: opts}
}

// Healthy reports whether the session can still carry frames: false
// once any Send or Receive has failed. The connection pool consults it
// on Put, so poisoned sessions are closed instead of re-pooled.
func (f *Framed) Healthy() bool {
	f.failMu.Lock()
	defer f.failMu.Unlock()
	return f.fail == nil
}

func (f *Framed) poison(err error) {
	f.failMu.Lock()
	if f.fail == nil {
		f.fail = err
	}
	f.failMu.Unlock()
}

func (f *Framed) latched() error {
	f.failMu.Lock()
	defer f.failMu.Unlock()
	if f.fail != nil {
		return fmt.Errorf("%w: %v", ErrPoisoned, f.fail)
	}
	return nil
}

// finishTx settles a pipelined handshake on the sending side: it reads
// the granted-version ack the hello solicited. Called lazily before the
// second frame (or a first receive), by which point the ack has usually
// long since arrived — the handshake costs no round trip on the first
// delivery.
func (f *Framed) finishTx() error {
	offer := f.opts.offer()
	var ack [4]byte
	if _, err := io.ReadFull(f.Conn, ack[:]); err != nil {
		return fmt.Errorf("wire: handshake ack: %w", err)
	}
	if ack[0] != helloMagic[0] || ack[1] != helloMagic[1] || ack[2] != helloMagic[2] {
		return fmt.Errorf("%w: bad handshake ack", ErrCorrupt)
	}
	v := int(ack[3])
	if v < 1 || v > offer {
		return fmt.Errorf("%w: handshake granted version %d against offer %d", ErrCorrupt, v, offer)
	}
	f.ver, f.verSet = v, true
	return nil
}

// negotiateRx classifies an incoming connection by its first four bytes:
// the hello magic starts a handshake (the pipelined first frame is
// decoded before the ack is written), anything else is a v1 length
// prefix, replayed into the gob frame reader.
func (f *Framed) negotiateRx() error {
	var first [4]byte
	if _, err := io.ReadFull(f.Conn, first[:]); err != nil {
		return err // io.EOF for a connection closed before any traffic
	}
	if first[0] == helloMagic[0] && first[1] == helloMagic[1] && first[2] == helloMagic[2] {
		offered := int(first[3])
		if offered < 2 {
			// v1 peers never send a hello; an offer below 2 is noise.
			return fmt.Errorf("%w: hello offers version %d", ErrCorrupt, offered)
		}
		v := f.opts.accept()
		if offered < v {
			v = offered
		}
		f.rxAckOwed = byte(v)
		f.rxFirstV2 = true
		f.ver, f.verSet = v, true
		return nil
	}
	f.fr.pre = append(f.fr.pre[:0], first[:]...)
	f.ver, f.verSet = 1, true
	return nil
}

// frameReader feeds the persistent gob decoder the concatenated
// payloads of the connection's v1 frames, stripping the length
// prefixes. pre replays the bytes version detection consumed.
type frameReader struct {
	conn      net.Conn
	pre       []byte
	remaining int
}

func (r *frameReader) readFull(p []byte) error {
	for len(p) > 0 && len(r.pre) > 0 {
		n := copy(p, r.pre)
		r.pre, p = r.pre[n:], p[n:]
	}
	if len(p) == 0 {
		return nil
	}
	_, err := io.ReadFull(r.conn, p)
	return err
}

func (r *frameReader) Read(p []byte) (int, error) {
	for r.remaining == 0 {
		var lenbuf [4]byte
		if err := r.readFull(lenbuf[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(lenbuf[:])
		if n > maxFrame {
			return 0, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
		}
		r.remaining = int(n)
	}
	if len(p) > r.remaining {
		p = p[:r.remaining]
	}
	if len(r.pre) > 0 {
		n := copy(p, r.pre)
		r.pre = r.pre[n:]
		r.remaining -= n
		return n, nil
	}
	n, err := r.conn.Read(p)
	r.remaining -= n
	return n, err
}

func (f *Framed) send(env *envelope) error {
	if err := f.latched(); err != nil {
		return err
	}
	if !f.verSet {
		if !f.txHello {
			if f.opts.offer() < 2 {
				f.ver, f.verSet = 1, true
			} else {
				// First frame: pipeline the hello with it in one write —
				// no round trip, and one fault-injection draw, exactly as
				// a bare v1 frame.
				err := f.sendV2(env, true)
				if err != nil {
					f.poison(err)
					return err
				}
				f.txHello = true
				return nil
			}
		} else if err := f.finishTx(); err != nil {
			f.poison(err)
			return err
		}
	}
	var err error
	if f.ver >= 2 {
		err = f.sendV2(env, false)
	} else {
		err = f.sendV1(env)
	}
	if err != nil {
		f.poison(err)
	}
	return err
}

func (f *Framed) sendV1(env *envelope) error {
	if f.enc == nil {
		f.enc = gob.NewEncoder(&f.encBuf)
	}
	f.encBuf.Reset()
	if err := f.enc.Encode(env); err != nil {
		return fmt.Errorf("wire: encode %s: %w", env.Kind, err)
	}
	payload := f.encBuf.Bytes()
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
	copy(frame[4:], payload)
	if _, err := f.Conn.Write(frame); err != nil {
		return fmt.Errorf("wire: send %s: %w", env.Kind, err)
	}
	if mm, ok := f.Conn.(netsim.MessageMarker); ok {
		mm.MarkMessage(env.Kind)
	}
	return nil
}

func (f *Framed) sendV2(env *envelope, withHello bool) error {
	if f.enc2 == nil {
		f.enc2 = newEncoder()
	}
	code, ok := kindCode(env.Kind)
	if !ok {
		return fmt.Errorf("wire: cannot send kind %q", env.Kind)
	}
	e := f.enc2
	e.buf = e.buf[:0]
	start := 0
	if withHello {
		e.buf = append(e.buf, helloMagic[0], helloMagic[1], helloMagic[2], byte(f.opts.offer()))
		start = 4
	}
	e.buf = append(e.buf, 0, 0, 0, 0, code, 0)
	if err := encodeEnvelope(e, env); err != nil {
		return err
	}
	frame := e.buf
	if env.Kind == KindResult && len(frame)-start-frameHeaderLen >= compressMin {
		f.cbuf.Reset()
		f.cbuf.Write(frame[:start])
		f.cbuf.Write([]byte{0, 0, 0, 0, code, flagCompressed})
		if compressPayload(&f.cbuf, frame[start+frameHeaderLen:]) {
			frame = f.cbuf.Bytes()
		}
	}
	binary.BigEndian.PutUint32(frame[start:start+4], uint32(len(frame)-start-4))
	if _, err := f.Conn.Write(frame); err != nil {
		return fmt.Errorf("wire: send %s: %w", env.Kind, err)
	}
	if mm, ok := f.Conn.(netsim.MessageMarker); ok {
		mm.MarkMessage(env.Kind)
	}
	if f.opts.OnFrame != nil {
		g := 0
		if f.opts.MeasureGob {
			g = gobSize(env)
		}
		f.opts.OnFrame(env.Kind, len(frame)-start, g)
	}
	return nil
}

func (f *Framed) receive() (any, error) {
	if err := f.latched(); err != nil {
		return nil, err
	}
	if !f.verSet {
		var err error
		if f.txHello {
			err = f.finishTx() // this side dialed; settle our own hello first
		} else {
			err = f.negotiateRx()
		}
		if err != nil {
			if err != io.EOF {
				f.poison(err)
			}
			return nil, err
		}
	}
	if f.rxFirstV2 {
		f.rxFirstV2 = false
		msg, err := f.receiveV2()
		if err != nil {
			if err != io.EOF {
				f.poison(err)
			}
			return nil, err
		}
		// The pipelined frame arrived whole: now the dialer may learn its
		// granted version. An ack that fails to send only kills this
		// session's future frames — never one already delivered.
		ack := [4]byte{helloMagic[0], helloMagic[1], helloMagic[2], f.rxAckOwed}
		if _, werr := f.Conn.Write(ack[:]); werr != nil {
			f.poison(fmt.Errorf("wire: handshake ack: %w", werr))
		}
		return msg, nil
	}
	var msg any
	var err error
	if f.ver >= 2 {
		msg, err = f.receiveV2()
	} else {
		msg, err = f.receiveV1()
	}
	if err != nil && err != io.EOF {
		f.poison(err)
	}
	return msg, err
}

func (f *Framed) receiveV1() (any, error) {
	if f.dec == nil {
		f.fr.conn = f.Conn
		f.dec = gob.NewDecoder(&f.fr)
	}
	var env envelope
	if err := f.dec.Decode(&env); err != nil {
		if err == io.EOF {
			return nil, err
		}
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return unwrap(&env)
}

func (f *Framed) receiveV2() (any, error) {
	var lenbuf [4]byte
	if _, err := io.ReadFull(f.Conn, lenbuf[:]); err != nil {
		if err == io.EOF {
			return nil, err
		}
		return nil, fmt.Errorf("%w: frame header: %v", ErrTruncated, err)
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	if n < 2 {
		return nil, fmt.Errorf("%w: frame of %d bytes", ErrCorrupt, n)
	}
	if cap(f.rbuf) < int(n) {
		f.rbuf = make([]byte, n)
	}
	buf := f.rbuf[:n]
	if _, err := io.ReadFull(f.Conn, buf); err != nil {
		return nil, fmt.Errorf("%w: short frame: %v", ErrTruncated, err)
	}
	code, flags := buf[0], buf[1]
	payload := buf[2:]
	if flags&^flagCompressed != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	if flags&flagCompressed != 0 {
		var err error
		f.dbuf, err = inflatePayload(payload, f.dbuf)
		if err != nil {
			return nil, err
		}
		payload = f.dbuf
	}
	if f.dec2 == nil {
		f.dec2 = newDecoder()
	}
	f.dec2.reset(payload)
	return decodeEnvelope(f.dec2, code)
}

// gobEncode appends env's gob encoding (a fresh one-frame gob session)
// to buf. Shared by plain Send and the v2 byte-savings oracle.
func gobEncode(buf *bytes.Buffer, env *envelope) error {
	return gob.NewEncoder(buf).Encode(env)
}

// Send encodes msg as one length-prefixed frame on conn and attributes
// it to the connection's edge when the transport is instrumented. msg
// must be one of the wire message pointer types. On a Framed connection
// the session's persistent codec is used (the negotiated version);
// plain connections always carry one-frame gob sessions, which any
// receiver understands.
func Send(conn net.Conn, msg any) error {
	env, err := wrap(msg)
	if err != nil {
		return err
	}
	if f, ok := conn.(*Framed); ok {
		return f.send(&env)
	}
	var buf bytes.Buffer
	buf.Write(make([]byte, 4)) // length placeholder, patched below
	if err := gobEncode(&buf, &env); err != nil {
		return fmt.Errorf("wire: encode %s: %w", env.Kind, err)
	}
	frame := buf.Bytes()
	binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("wire: send %s: %w", env.Kind, err)
	}
	if mm, ok := conn.(netsim.MessageMarker); ok {
		mm.MarkMessage(env.Kind)
	}
	return nil
}

// Receive reads one frame from conn and returns the contained message as
// one of *CloneMsg, *ResultMsg, *FetchReq, *FetchResp. On a Framed
// connection the session's persistent decoder is used.
func Receive(conn net.Conn) (any, error) {
	if f, ok := conn.(*Framed); ok {
		return f.receive()
	}
	var lenbuf [4]byte
	if _, err := io.ReadFull(conn, lenbuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenbuf[:])
	if n > maxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&env); err != nil {
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	return unwrap(&env)
}

// unwrap validates an envelope and returns its payload message.
func unwrap(env *envelope) (any, error) {
	switch env.Kind {
	case KindClone:
		if env.Clone == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Clone, nil
	case KindResult:
		if env.Result == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Result, nil
	case KindBounce:
		if env.Bounce == nil || env.Bounce.Clone == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Bounce, nil
	case KindShed:
		if env.Shed == nil || env.Shed.Clone == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Shed, nil
	case KindStop:
		if env.Stop == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Stop, nil
	case KindFetchReq:
		if env.FetchReq == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.FetchReq, nil
	case KindFetchResp:
		if env.FetchResp == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.FetchResp, nil
	case KindTune:
		if env.Tune == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Tune, nil
	case KindWatch:
		if env.Watch == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Watch, nil
	case KindDelta:
		if env.Delta == nil {
			return nil, fmt.Errorf("wire: empty %s envelope", env.Kind)
		}
		return env.Delta, nil
	}
	return nil, fmt.Errorf("wire: unknown message kind %q", env.Kind)
}
