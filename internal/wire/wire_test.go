package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"reflect"
	"strings"
	"testing"

	"webdis/internal/netsim"
	"webdis/internal/nodequery"
)

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	errc := make(chan error, 1)
	go func() { errc <- Send(c1, msg) }()
	got, err := Receive(c2)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	return got
}

func sampleClone() *CloneMsg {
	return &CloneMsg{
		ID: QueryID{User: "maya", Site: "user/results", Num: 7},
		Dest: []DestNode{
			{URL: "http://a.example/x.html", Origin: "b.example/query", Seq: 1},
			{URL: "http://a.example/y.html", Origin: "b.example/query", Seq: 2},
		},
		Rem:  "G|L",
		Base: 1,
		Stages: []StageMsg{
			{
				PRE: "G·(G|L)",
				Query: &nodequery.Query{
					Vars: []nodequery.VarDecl{
						{Name: "d", Rel: "document"},
						{Name: "r", Rel: "relinfon",
							Cond: nodequery.Compare(nodequery.ColOperand("r", "delimiter"), nodequery.Eq, nodequery.LitOperand("hr"))},
					},
					Where:  nodequery.Compare(nodequery.ColOperand("r", "text"), nodequery.Contains, nodequery.LitOperand("convener")),
					Select: []nodequery.ColRef{{Var: "d", Col: "url"}, {Var: "r", Col: "text"}},
				},
			},
		},
		Hops: 3,
	}
}

func TestCloneRoundTrip(t *testing.T) {
	in := sampleClone()
	out, ok := roundTrip(t, in).(*CloneMsg)
	if !ok {
		t.Fatalf("got %T", out)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\nin  = %+v\nout = %+v", in, out)
	}
	if out.Stages[0].Query.Where.String() != in.Stages[0].Query.Where.String() {
		t.Error("predicate tree damaged in transit")
	}
	if got := out.State(); got.NumQ != 1 || got.Rem != "G|L" {
		t.Errorf("state = %v", got)
	}
}

func TestResultRoundTrip(t *testing.T) {
	in := &ResultMsg{
		ID: QueryID{User: "maya", Site: "user/results", Num: 7},
		Updates: []CHTUpdate{
			{
				Processed: CHTEntry{Node: "http://a.example/x.html", State: State{NumQ: 2, Rem: "L*1"}},
				Children: []CHTEntry{
					{Node: "http://b.example/y.html", State: State{NumQ: 1, Rem: "G·L*1"}},
				},
			},
		},
		Tables: []NodeTable{
			{Node: "http://a.example/x.html", Stage: 0,
				Cols: []string{"d0.url"}, Rows: [][]string{{"http://a.example/x.html"}}},
		},
	}
	out, ok := roundTrip(t, in).(*ResultMsg)
	if !ok || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestFetchRoundTrip(t *testing.T) {
	req, ok := roundTrip(t, &FetchReq{URL: "http://a.example/x.html"}).(*FetchReq)
	if !ok || req.URL != "http://a.example/x.html" {
		t.Fatalf("req = %+v", req)
	}
	resp, ok := roundTrip(t, &FetchResp{URL: "u", Content: []byte("<html>"), Err: ""}).(*FetchResp)
	if !ok || string(resp.Content) != "<html>" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestSendUnknownType(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if err := Send(c1, "not a message"); err == nil {
		t.Fatal("Send(string) should fail")
	}
}

func TestMultipleMessagesOneConn(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		Send(c1, &FetchReq{URL: "one"})
		Send(c1, &FetchReq{URL: "two"})
		Send(c1, sampleClone())
	}()
	for _, want := range []string{"one", "two"} {
		m, err := Receive(c2)
		if err != nil {
			t.Fatal(err)
		}
		if m.(*FetchReq).URL != want {
			t.Fatalf("got %+v, want %s", m, want)
		}
	}
	if m, err := Receive(c2); err != nil {
		t.Fatal(err)
	} else if _, ok := m.(*CloneMsg); !ok {
		t.Fatalf("got %T", m)
	}
}

func TestMessageMarkedOnInstrumentedConn(t *testing.T) {
	n := netsim.New(netsim.Options{})
	ln, _ := n.Listen("server")
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		Receive(c)
	}()
	c, err := n.Dial("user", "server")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := Send(c, sampleClone()); err != nil {
		t.Fatal(err)
	}
	sn := n.Stats().Snapshot()
	cnt := sn.Edges[netsim.Edge{From: "user", To: "server"}]
	if cnt.Messages != 1 || cnt.ByKind[KindClone] != 1 {
		t.Errorf("counters = %+v", cnt)
	}
	if cnt.Bytes < 100 {
		t.Errorf("clone bytes = %d, implausibly small", cnt.Bytes)
	}
}

func TestReceiveGarbage(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go c1.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := Receive(c2); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryIDAndStateStrings(t *testing.T) {
	id := QueryID{User: "maya", Site: "user/results", Num: 3}
	if id.String() != "maya@user/results#3" {
		t.Errorf("id = %s", id)
	}
	s := State{NumQ: 2, Rem: "L*1"}
	if s.String() != "(2, L*1)" {
		t.Errorf("state = %s", s)
	}
	if s.Key() != "2|L*1" {
		t.Errorf("key = %s", s.Key())
	}
	e := CHTEntry{Node: "http://x", State: s, Origin: "a/query", Seq: 9}
	if e.Key() != "http://x§2|L*1§a/query§9" {
		t.Errorf("entry key = %s", e.Key())
	}
	e2 := CHTEntry{Node: "http://x", State: s, Origin: "a/query", Seq: 10}
	if e.Key() == e2.Key() {
		t.Error("distinct clone instances must have distinct keys")
	}
}

func TestCloneEnvRoundTrip(t *testing.T) {
	in := sampleClone()
	in.Env = map[string]string{"d0.title": "Laboratories of the CSA Department", "d0.url": "http://x"}
	in.Stages[0].Export = []string{"title"}
	out, ok := roundTrip(t, in).(*CloneMsg)
	if !ok || !reflect.DeepEqual(in.Env, out.Env) || out.Stages[0].Export[0] != "title" {
		t.Fatalf("env round trip: %+v", out)
	}
}

func TestEnvKey(t *testing.T) {
	if EnvKey(nil) != "" || EnvKey(map[string]string{}) != "" {
		t.Error("empty env should key to empty string")
	}
	a := EnvKey(map[string]string{"x": "1", "y": "2"})
	b := EnvKey(map[string]string{"y": "2", "x": "1"})
	if a != b {
		t.Error("EnvKey must be order-independent")
	}
	c := EnvKey(map[string]string{"x": "1", "y": "3"})
	if a == c {
		t.Error("different values must key differently")
	}
}

func TestReceiveMalformedEnvelopes(t *testing.T) {
	// Hand-craft envelopes whose kind does not match their payload.
	send := func(env envelope) (any, error) {
		c1, c2 := net.Pipe()
		defer c1.Close()
		defer c2.Close()
		go func() {
			var buf bytes.Buffer
			buf.Write(make([]byte, 4))
			gob.NewEncoder(&buf).Encode(&env)
			frame := buf.Bytes()
			binary.BigEndian.PutUint32(frame[:4], uint32(len(frame)-4))
			c1.Write(frame)
		}()
		return Receive(c2)
	}
	for _, env := range []envelope{
		{Kind: KindClone},                        // empty clone
		{Kind: KindResult},                       // empty result
		{Kind: KindBounce},                       // empty bounce
		{Kind: KindFetchReq},                     // empty fetch request
		{Kind: KindFetchResp},                    // empty fetch response
		{Kind: "mystery"},                        // unknown kind
		{Kind: KindBounce, Bounce: &BounceMsg{}}, // bounce without clone
	} {
		if _, err := send(env); err == nil {
			t.Errorf("envelope %q should fail to receive", env.Kind)
		}
	}
}

func TestReceiveShortFrame(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	go func() {
		c1.Write([]byte{0, 0, 0, 50, 1, 2, 3}) // claims 50 bytes, sends 3
		c1.Close()
	}()
	if _, err := Receive(c2); err == nil {
		t.Fatal("short frame should fail")
	}
}

func TestReceiveBadGob(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c2.Close()
	go func() {
		payload := []byte("this is not gob data....")
		frame := append([]byte{0, 0, 0, byte(len(payload))}, payload...)
		c1.Write(frame)
		c1.Close()
	}()
	if _, err := Receive(c2); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatal("bad gob should fail to decode")
	}
}

func TestShedRoundTrip(t *testing.T) {
	in := &ShedMsg{Clone: sampleClone(), Site: "b.example/query"}
	out, ok := roundTrip(t, in).(*ShedMsg)
	if !ok || !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch: %+v vs %+v", in, out)
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	in := sampleClone()
	in.Budget = Budget{Deadline: 12345, Hops: 4, Clones: 9, Rows: 100, Weight: 3}
	out := roundTrip(t, in).(*CloneMsg)
	if !reflect.DeepEqual(in.Budget, out.Budget) {
		t.Fatalf("budget mismatch: %+v vs %+v", in.Budget, out.Budget)
	}
}

func TestBudgetSemantics(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Error("zero budget must be unlimited")
	}
	if (Budget{Weight: 1}).IsZero() {
		t.Error("weighted budget is not zero")
	}
	b := Budget{Deadline: 100}
	if b.ExpiredAt(100) {
		t.Error("deadline is inclusive")
	}
	if !b.ExpiredAt(101) {
		t.Error("past the deadline must expire")
	}
	if (Budget{}).ExpiredAt(1 << 60) {
		t.Error("no deadline never expires")
	}
	// Hop quota spends down through the -1 exhaustion sentinel, never
	// landing on the unlimited 0.
	b = Budget{Hops: 2}
	if b = b.Spend(); b.Hops != 1 {
		t.Fatalf("hops after one spend = %d", b.Hops)
	}
	if b = b.Spend(); b.Hops != -1 {
		t.Fatalf("hops after two spends = %d, want -1 (exhausted)", b.Hops)
	}
	if b = b.Spend(); b.Hops != -1 {
		t.Fatalf("spending an exhausted budget changed it: %d", b.Hops)
	}
	if b = (Budget{}).Spend(); b.Hops != 0 {
		t.Fatalf("unlimited hops spent to %d", b.Hops)
	}
}
