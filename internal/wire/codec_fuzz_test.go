package wire

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"webdis/internal/nodequery"
)

// fuzzSource deals bounded values out of the fuzz input — a tiny
// deterministic generator, so every corpus entry maps to one message.
type fuzzSource struct {
	data []byte
	off  int
}

func (s *fuzzSource) byte() byte {
	if s.off >= len(s.data) {
		return 0
	}
	b := s.data[s.off]
	s.off++
	return b
}

func (s *fuzzSource) n(bound int) int { return int(s.byte()) % bound }

func (s *fuzzSource) i64() int64 {
	v := int64(s.byte())<<8 | int64(s.byte())
	if s.byte()&1 == 1 {
		v = -v
	}
	return v
}

func (s *fuzzSource) str() string {
	n := s.n(12)
	b := make([]byte, n)
	for i := range b {
		b[i] = ' ' + s.byte()%95 // printable ASCII
	}
	return string(b)
}

func (s *fuzzSource) pred(depth int) *nodequery.Pred {
	if depth > 3 {
		return nil
	}
	switch s.n(5) {
	case 0:
		return nil
	case 1:
		return &nodequery.Pred{Kind: nodequery.True}
	case 2:
		return nodequery.Compare(
			nodequery.ColOperand(s.str(), s.str()),
			nodequery.CmpOp(s.n(int(nodequery.NotContains)+1)),
			nodequery.LitOperand(s.str()))
	default:
		p := &nodequery.Pred{Kind: nodequery.PredKind(s.n(3) + 1)} // And/Or/Not
		for i, k := 0, s.n(3); i < k; i++ {
			p.Kids = append(p.Kids, s.pred(depth+1))
		}
		return p
	}
}

func (s *fuzzSource) clone() *CloneMsg {
	m := &CloneMsg{
		ID:   QueryID{User: s.str(), Site: s.str(), Num: int(s.byte())},
		Rem:  s.str(),
		Base: s.n(4),
		Hops: s.n(16),
		Span: SpanID{Origin: s.str(), Seq: s.i64()},
	}
	for i, k := 0, s.n(4); i < k; i++ {
		m.Dest = append(m.Dest, DestNode{URL: s.str(), Origin: s.str(), Seq: s.i64()})
	}
	for i, k := 0, s.n(3); i < k; i++ {
		st := StageMsg{PRE: s.str()}
		if s.byte()&1 == 1 {
			st.Query = &nodequery.Query{Where: s.pred(0)}
			for j, v := 0, s.n(3); j < v; j++ {
				st.Query.Vars = append(st.Query.Vars, nodequery.VarDecl{Name: s.str(), Rel: s.str(), Cond: s.pred(0)})
			}
			for j, v := 0, s.n(3); j < v; j++ {
				st.Query.Select = append(st.Query.Select, nodequery.ColRef{Var: s.str(), Col: s.str()})
			}
		}
		for j, v := 0, s.n(3); j < v; j++ {
			st.Export = append(st.Export, s.str())
		}
		m.Stages = append(m.Stages, st)
	}
	if k := s.n(3); k > 0 {
		m.Env = make(map[string]string, k)
		for i := 0; i < k; i++ {
			m.Env[s.str()] = s.str()
		}
	}
	m.Budget = Budget{Deadline: s.i64(), Hops: s.n(8), Rows: s.n(1000), FirstN: s.n(50)}
	if s.byte()&1 == 1 {
		m.Frag = &PlanFrag{Version: 1, Stage: s.n(3), Spec: nodequery.OutputSpec{
			Cols:  []nodequery.OutputCol{{Agg: nodequery.AggKind(s.n(int(nodequery.AggMax) + 1)), Star: s.byte()&1 == 1, Ref: nodequery.ColRef{Var: s.str(), Col: s.str()}}},
			Limit: s.n(100),
		}}
	}
	for i, k := 0, s.n(3); i < k; i++ {
		m.Hints = append(m.Hints, SiteStat{Site: s.str(), Docs: s.i64(), DocBytes: s.i64(), Fanout: s.i64()})
	}
	return m
}

func (s *fuzzSource) result() *ResultMsg {
	m := &ResultMsg{
		ID:   QueryID{User: s.str(), Site: s.str(), Num: int(s.byte())},
		Site: s.str(),
		Hop:  s.n(16),
		From: s.str(),
		Inc:  s.i64(),
	}
	rep := func() Report {
		var r Report
		for i, k := 0, s.n(3); i < k; i++ {
			u := CHTUpdate{Processed: CHTEntry{Node: s.str(), State: State{NumQ: s.n(4), Rem: s.str()}, Origin: s.str(), Seq: s.i64()}}
			for j, c := 0, s.n(3); j < c; j++ {
				u.Children = append(u.Children, CHTEntry{Node: s.str(), Origin: s.str(), Seq: s.i64()})
			}
			r.Updates = append(r.Updates, u)
		}
		for i, k := 0, s.n(3); i < k; i++ {
			t := NodeTable{Node: s.str(), Stage: s.n(3), Env: s.str(), Partial: s.byte()&1 == 1}
			for j, c := 0, s.n(3); j < c; j++ {
				t.Cols = append(t.Cols, s.str())
			}
			for j, c := 0, s.n(4); j < c; j++ {
				var row []string
				for x := 0; x < len(t.Cols); x++ {
					row = append(row, s.str())
				}
				t.Rows = append(t.Rows, row)
			}
			r.Tables = append(r.Tables, t)
		}
		r.Expired = s.byte()&1 == 1
		r.Stopped = s.byte()&1 == 1
		r.Span = SpanID{Origin: s.str(), Seq: s.i64()}
		r.Site = s.str()
		r.Hop = s.n(16)
		for i, k := 0, s.n(3); i < k; i++ {
			r.Spawned = append(r.Spawned, SpanLink{Span: SpanID{Origin: s.str(), Seq: s.i64()}, Site: s.str()})
		}
		return r
	}
	flat := rep()
	m.Updates, m.Tables = flat.Updates, flat.Tables
	m.Expired, m.Stopped, m.Spawned = flat.Expired, flat.Stopped, flat.Spawned
	for i, k := 0, s.n(3); i < k; i++ {
		m.Reports = append(m.Reports, rep())
	}
	return m
}

// message builds one wire message of a fuzz-chosen kind.
func (s *fuzzSource) message() any {
	switch s.n(10) {
	case 0:
		return s.clone()
	case 1:
		return s.result()
	case 2:
		return &BounceMsg{Clone: s.clone(), Reason: s.str()}
	case 3:
		return &ShedMsg{Clone: s.clone(), Site: s.str()}
	case 4:
		return &StopMsg{ID: QueryID{User: s.str(), Site: s.str(), Num: s.n(100)}, Reason: s.str()}
	case 5:
		return &FetchReq{URL: s.str()}
	case 6:
		return &FetchResp{URL: s.str(), Content: []byte(s.str()), Err: s.str()}
	case 7:
		return &TuneMsg{ID: QueryID{User: s.str(), Site: s.str(), Num: s.n(100)}, MaxRows: s.n(10000), MaxAgeMicros: s.i64()}
	case 8:
		return &WatchMsg{Version: s.n(3), ID: QueryID{User: s.str(), Site: s.str(), Num: s.n(100)}, Cancel: s.n(2) == 1}
	default:
		m := &DeltaMsg{Version: s.n(3), ID: QueryID{User: s.str(), Site: s.str(), Num: s.n(100)}, Site: s.str(), Seq: s.i64()}
		for i, k := 0, s.n(3); i < k; i++ {
			m.Edited = append(m.Edited, s.str())
		}
		for i, k := 0, s.n(3); i < k; i++ {
			m.Rewired = append(m.Rewired, s.str())
		}
		return m
	}
}

// gobCanonical round-trips msg through the gob envelope — the oracle.
// Gob normalizes in ways the fuzzer must mirror (empty slices/maps to
// nil, pointer-to-zero-struct dropped), so the comparison target is
// gob's reconstruction, not the raw input.
func gobCanonical(t *testing.T, msg any) any {
	t.Helper()
	env, err := wrap(msg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Skip("gob cannot encode this message; nothing to compare")
	}
	var out envelope
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob oracle decode: %v", err)
	}
	m, err := unwrap(&out)
	if err != nil {
		t.Skipf("oracle rejects message: %v", err)
	}
	return m
}

// v2RoundTrip encodes msg as one v2 payload and decodes it back on
// fresh codecs, returning the payload too for mutation checks.
func v2RoundTrip(t *testing.T, msg any) (any, []byte, byte) {
	t.Helper()
	env, err := wrap(msg)
	if err != nil {
		t.Fatal(err)
	}
	code, ok := kindCode(env.Kind)
	if !ok {
		t.Fatalf("no kind code for %q", env.Kind)
	}
	enc := newEncoder()
	if err := encodeEnvelope(enc, &env); err != nil {
		t.Skipf("v2 refuses to encode: %v", err)
	}
	dec := newDecoder()
	dec.reset(enc.buf)
	out, err := decodeEnvelope(dec, code)
	if err != nil {
		t.Fatalf("v2 decode of freshly encoded %q: %v", env.Kind, err)
	}
	return out, enc.buf, code
}

// FuzzCodecRoundTrip is the differential fuzzer the CI smoke job runs:
// every generated message must decode from v2 to exactly what the gob
// oracle reconstructs; every truncation of a valid payload must fail
// with a typed error; byte flips must never panic or hang.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add([]byte("select d.url from document d such that start N|(G*3) d"))
	f.Add(bytes.Repeat([]byte{0xFF, 0x00, 0x7F}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		src := &fuzzSource{data: data}
		msg := src.message()

		want := gobCanonical(t, msg)
		got, payload, code := v2RoundTrip(t, want)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("v2 disagrees with gob oracle:\ngob = %#v\nv2  = %#v", want, got)
		}

		// Every truncation must be rejected with a typed error — never a
		// silent partial message.
		for _, cut := range []int{0, len(payload) / 2, len(payload) - 1} {
			if cut < 0 || cut >= len(payload) {
				continue
			}
			dec := newDecoder()
			dec.reset(payload[:cut])
			if m, err := decodeEnvelope(dec, code); err == nil {
				t.Fatalf("truncation at %d/%d decoded to %#v", cut, len(payload), m)
			} else if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncation error not typed: %v", err)
			}
		}

		// Byte flips must never panic; errors (or reinterpreted messages)
		// are both acceptable.
		if len(payload) > 0 && len(data) > 0 {
			flipped := append([]byte(nil), payload...)
			flipped[int(data[0])%len(flipped)] ^= 0xA5
			dec := newDecoder()
			dec.reset(flipped)
			decodeEnvelope(dec, code)
		}

		// Arbitrary bytes as a payload must never panic either.
		dec := newDecoder()
		dec.reset(data)
		decodeEnvelope(dec, byte(len(data))%9)
	})
}
