package pre

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses the concrete PRE syntax of the paper:
//
//	pre  := cat ('|' cat)*
//	cat  := rep (('·' | '.')? rep)*          // the dot is optional
//	rep  := atom ('*' digits?)*
//	atom := 'I' | 'L' | 'G' | 'N' | '(' pre ')'
//
// '*' with no digits is unbounded repetition; '*k' allows up to k
// repetitions, so L*4 matches zero through four local links. Whitespace is
// ignored everywhere.
func Parse(s string) (Expr, error) {
	p := &parser{src: []rune(s)}
	e, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pre: unexpected %q at offset %d in %q", p.src[p.pos], p.pos, s)
	}
	return e, nil
}

// MustParse is Parse, panicking on error. For tests and fixed literals.
func MustParse(s string) Expr {
	e, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src []rune
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(p.src[p.pos]) {
		p.pos++
	}
}

func (p *parser) peek() (rune, bool) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0, false
	}
	return p.src[p.pos], true
}

func (p *parser) alt() (Expr, error) {
	var branches []Expr
	e, err := p.cat()
	if err != nil {
		return nil, err
	}
	branches = append(branches, e)
	for {
		r, ok := p.peek()
		if !ok || r != '|' {
			break
		}
		p.pos++
		e, err := p.cat()
		if err != nil {
			return nil, err
		}
		branches = append(branches, e)
	}
	return Alt(branches...), nil
}

func (p *parser) cat() (Expr, error) {
	var parts []Expr
	e, err := p.rep()
	if err != nil {
		return nil, err
	}
	parts = append(parts, e)
	for {
		r, ok := p.peek()
		if !ok {
			break
		}
		switch {
		case r == '·' || r == '.':
			p.pos++
			e, err := p.rep()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		case isAtomStart(r):
			// implicit concatenation, e.g. "GL" for G·L
			e, err := p.rep()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		default:
			return Cat(parts...), nil
		}
	}
	return Cat(parts...), nil
}

func isAtomStart(r rune) bool {
	switch r {
	case 'I', 'L', 'G', 'N', '(':
		return true
	}
	return false
}

func (p *parser) rep() (Expr, error) {
	e, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		r, ok := p.peek()
		if !ok || r != '*' {
			return e, nil
		}
		p.pos++
		// optional bound digits
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.src) && unicode.IsDigit(p.src[p.pos]) {
			p.pos++
		}
		if p.pos == start {
			e = Star(e)
			continue
		}
		n := 0
		for _, d := range p.src[start:p.pos] {
			n = n*10 + int(d-'0')
			if n > 1<<20 {
				return nil, fmt.Errorf("pre: repetition bound too large at offset %d", start)
			}
		}
		e = Rep(e, n)
	}
}

func (p *parser) atom() (Expr, error) {
	r, ok := p.peek()
	if !ok {
		return nil, fmt.Errorf("pre: unexpected end of expression %q", string(p.src))
	}
	switch r {
	case 'I', 'L', 'G':
		p.pos++
		return Sym(Link(r)), nil
	case 'N':
		p.pos++
		return Eps(), nil
	case '(':
		p.pos++
		e, err := p.alt()
		if err != nil {
			return nil, err
		}
		r, ok := p.peek()
		if !ok || r != ')' {
			return nil, fmt.Errorf("pre: missing ')' in %q", string(p.src))
		}
		p.pos++
		return e, nil
	}
	return nil, fmt.Errorf("pre: unexpected %q at offset %d in %q", r, p.pos, string(p.src))
}

// ParsePath parses a bare link path such as "GLL" or "G·L·L" into its link
// sequence. The null link N is permitted and contributes no step.
func ParsePath(s string) ([]Link, error) {
	var out []Link
	for _, r := range s {
		switch {
		case unicode.IsSpace(r), r == '·', r == '.':
		case r == 'N':
		case r == 'I' || r == 'L' || r == 'G':
			out = append(out, Link(r))
		default:
			return nil, fmt.Errorf("pre: invalid path element %q in %q", r, s)
		}
	}
	return out, nil
}

// FormatPath renders a link path in compact form ("G·L·L"); the empty path
// renders as "N".
func FormatPath(p []Link) string {
	if len(p) == 0 {
		return "N"
	}
	parts := make([]string, len(p))
	for i, l := range p {
		parts[i] = l.String()
	}
	return strings.Join(parts, "·")
}
