// Package pre implements Path Regular Expressions (PREs), the traversal
// language of the WEBDIS system (Gupta, Haritsa, Ramanath: "Distributed
// Query Processing on the Web", ICDE 2000).
//
// A PRE describes a set of hyperlink paths over the Web graph. Paths are
// built from the link symbols
//
//	I  interior link (destination inside the same web resource)
//	L  local link    (destination on the same server)
//	G  global link   (destination on a different server)
//	N  null link     (the zero-length path; the resource itself)
//
// combined with concatenation (· or .), alternation (|) and repetition
// (* for unbounded, *k for at most k repetitions). For example
//
//	N | G·(L*4)
//
// denotes the zero-length path together with every path that starts with a
// global link and continues with up to four local links.
//
// The package provides the operations the WEBDIS engine needs:
//
//   - Parse / String: the concrete syntax.
//   - Nullable: does the PRE "contain the null link", i.e. does it match the
//     zero-length path? (Figure 3, line 4 of the paper: this is the test
//     that decides whether the node-query is evaluated at the current node.)
//   - First: the set of link types on which the PRE can advance.
//   - Derive: the Brzozowski derivative — the "modifiedPRE" of Figure 4,
//     line 15, carried by a clone after traversing one link.
//   - Compare / RewriteSuperset: the star-bound subsumption test and the
//     query-multiple-rewrite rule of Section 3.1.1 (A*m·B → A·A*(m-1)·B),
//     used by the Node-query Log Table.
//   - Contains: full language containment via DFA construction, used by the
//     engine's optional "strong" duplicate-detection mode.
package pre

import (
	"fmt"
	"sort"
	"strings"
)

// Link identifies a hyperlink category. The null link is not a Link value:
// it is represented by the nullable (epsilon) expression Eps.
type Link byte

// The three traversable link categories of the paper's web model.
const (
	Interior Link = 'I'
	Local    Link = 'L'
	Global   Link = 'G'
)

// Links lists all traversable link categories in canonical order.
var Links = []Link{Interior, Local, Global}

// Valid reports whether l is one of the three traversable link categories.
func (l Link) Valid() bool {
	return l == Interior || l == Local || l == Global
}

func (l Link) String() string { return string(byte(l)) }

// Unbounded is the Max value of a repetition node with no upper bound (A*).
const Unbounded = -1

// Expr is a parsed path regular expression. Expressions are immutable; all
// operations return new values. Two expressions denote the same syntactic
// PRE exactly when their String forms are equal (the equality used by the
// paper's log-table protocol).
type Expr interface {
	fmt.Stringer
	isExpr()
	// prec is the printing precedence: 0 alt, 1 cat, 2 atom/rep.
	prec() int
}

type (
	epsExpr  struct{}
	noneExpr struct{}
	symExpr  struct{ l Link }
	catExpr  struct{ es []Expr }
	altExpr  struct{ es []Expr }
	repExpr  struct {
		e   Expr
		max int // Unbounded or >= 1
	}
)

func (epsExpr) isExpr()  {}
func (noneExpr) isExpr() {}
func (symExpr) isExpr()  {}
func (catExpr) isExpr()  {}
func (altExpr) isExpr()  {}
func (repExpr) isExpr()  {}

func (epsExpr) prec() int  { return 2 }
func (noneExpr) prec() int { return 2 }
func (symExpr) prec() int  { return 2 }
func (catExpr) prec() int  { return 1 }
func (altExpr) prec() int  { return 0 }
func (repExpr) prec() int  { return 2 }

// Eps returns the null-link expression N, matching only the zero-length path.
func Eps() Expr { return epsExpr{} }

// None returns the empty expression matching no path at all. It never
// appears in user queries; it arises as a derivative dead end.
func None() Expr { return noneExpr{} }

// Sym returns the expression matching a single link of category l.
func Sym(l Link) Expr { return symExpr{l} }

// Cat returns the concatenation of es, applying the usual simplifications
// (flattening, unit elimination, annihilation by None).
func Cat(es ...Expr) Expr {
	var out []Expr
	for _, e := range es {
		switch v := e.(type) {
		case epsExpr:
			// identity
		case noneExpr:
			return None()
		case catExpr:
			out = append(out, v.es...)
		default:
			out = append(out, e)
		}
	}
	switch len(out) {
	case 0:
		return Eps()
	case 1:
		return out[0]
	}
	return catExpr{out}
}

// Alt returns the alternation of es, flattening nested alternations,
// removing None branches and syntactic duplicates. Branch order is
// preserved, so Alt is deterministic but not commutative-canonical; the
// engine always derives clones the same way, which keeps the syntactic
// equality used by the log table meaningful.
func Alt(es ...Expr) Expr {
	var out []Expr
	seen := make(map[string]bool)
	for _, e := range es {
		switch v := e.(type) {
		case noneExpr:
			// identity
		case altExpr:
			for _, sub := range v.es {
				if s := sub.String(); !seen[s] {
					seen[s] = true
					out = append(out, sub)
				}
			}
		default:
			if s := e.String(); !seen[s] {
				seen[s] = true
				out = append(out, e)
			}
		}
	}
	switch len(out) {
	case 0:
		return None()
	case 1:
		return out[0]
	}
	return altExpr{out}
}

// Star returns the unbounded repetition e*.
func Star(e Expr) Expr { return Rep(e, Unbounded) }

// Rep returns the bounded repetition e*max, matching zero through max
// occurrences of e. Rep(e, Unbounded) is e*. Rep(e, 0) is the null link.
func Rep(e Expr, max int) Expr {
	if max == 0 {
		return Eps()
	}
	switch v := e.(type) {
	case epsExpr:
		return Eps()
	case noneExpr:
		return Eps() // zero repetitions of the impossible path
	case repExpr:
		if v.max == Unbounded || max == Unbounded {
			return repExpr{v.e, Unbounded}
		}
		return repExpr{v.e, v.max * max}
	}
	return repExpr{e, max}
}

// String renders the expression in the paper's concrete syntax, using '·'
// for concatenation, '|' for alternation, '*'/'*k' for repetition and 'N'
// for the null link. Parse(e.String()) always round-trips.
func (epsExpr) String() string  { return "N" }
func (noneExpr) String() string { return "∅" }
func (e symExpr) String() string {
	return e.l.String()
}

func paren(e Expr, min int) string {
	s := e.String()
	if e.prec() < min {
		return "(" + s + ")"
	}
	return s
}

func (e catExpr) String() string {
	parts := make([]string, len(e.es))
	for i, sub := range e.es {
		parts[i] = paren(sub, 2)
	}
	return strings.Join(parts, "·")
}

func (e altExpr) String() string {
	parts := make([]string, len(e.es))
	for i, sub := range e.es {
		parts[i] = paren(sub, 1)
	}
	return strings.Join(parts, "|")
}

func (e repExpr) String() string {
	body := paren(e.e, 2)
	if _, ok := e.e.(repExpr); ok {
		// nested repetitions always need grouping: L*2*3 is ambiguous
		body = "(" + body + ")"
	}
	if e.max == Unbounded {
		return body + "*"
	}
	return fmt.Sprintf("%s*%d", body, e.max)
}

// Equal reports whether a and b are the same syntactic PRE.
func Equal(a, b Expr) bool { return a.String() == b.String() }

// IsNone reports whether e is the empty expression matching no paths.
func IsNone(e Expr) bool {
	_, ok := e.(noneExpr)
	return ok
}

// Nullable reports whether e matches the zero-length path — in the paper's
// terms, whether the PRE "contains the null link". A WEBDIS node evaluates
// its node-query exactly when the clone's remaining PRE is nullable.
func Nullable(e Expr) bool {
	switch v := e.(type) {
	case epsExpr:
		return true
	case noneExpr:
		return false
	case symExpr:
		return false
	case catExpr:
		for _, sub := range v.es {
			if !Nullable(sub) {
				return false
			}
		}
		return true
	case altExpr:
		for _, sub := range v.es {
			if Nullable(sub) {
				return true
			}
		}
		return false
	case repExpr:
		return true
	}
	panic("pre: unknown expression node")
}

// First returns the set of link categories on which e can advance, in
// canonical I, L, G order. An empty result means the PRE cannot traverse
// any further link (it is exhausted or dead).
func First(e Expr) []Link {
	set := make(map[Link]bool)
	first(e, set)
	var out []Link
	for _, l := range Links {
		if set[l] {
			out = append(out, l)
		}
	}
	return out
}

func first(e Expr, set map[Link]bool) {
	switch v := e.(type) {
	case epsExpr, noneExpr:
	case symExpr:
		set[v.l] = true
	case catExpr:
		for _, sub := range v.es {
			first(sub, set)
			if !Nullable(sub) {
				return
			}
		}
	case altExpr:
		for _, sub := range v.es {
			first(sub, set)
		}
	case repExpr:
		first(v.e, set)
	}
}

// Derive returns the Brzozowski derivative of e with respect to link l: the
// PRE matching exactly the suffixes of e-paths that begin with l. This is
// the "modifiedPRE" a WEBDIS clone carries after traversing a link of
// category l (Figure 4, line 15). Deriving preserves the syntactic star
// bounds (L*4 becomes L*3, never an unrolled L·L·L), which the log-table
// subsumption test of Section 3.1.1 relies on.
func Derive(e Expr, l Link) Expr {
	switch v := e.(type) {
	case epsExpr, noneExpr:
		return None()
	case symExpr:
		if v.l == l {
			return Eps()
		}
		return None()
	case catExpr:
		head, tail := v.es[0], Cat(v.es[1:]...)
		d := Cat(Derive(head, l), tail)
		if Nullable(head) {
			return Alt(d, Derive(tail, l))
		}
		return d
	case altExpr:
		ds := make([]Expr, len(v.es))
		for i, sub := range v.es {
			ds[i] = Derive(sub, l)
		}
		return Alt(ds...)
	case repExpr:
		rest := Unbounded
		if v.max != Unbounded {
			rest = v.max - 1
		}
		return Cat(Derive(v.e, l), Rep(v.e, rest))
	}
	panic("pre: unknown expression node")
}

// MaxLen returns the length of the longest path matched by e, or Unbounded
// if e matches arbitrarily long paths. The centralized (data-shipping)
// baseline uses this to bound its breadth-first frontier.
func MaxLen(e Expr) int {
	switch v := e.(type) {
	case epsExpr:
		return 0
	case noneExpr:
		return 0
	case symExpr:
		return 1
	case catExpr:
		total := 0
		for _, sub := range v.es {
			n := MaxLen(sub)
			if n == Unbounded {
				return Unbounded
			}
			total += n
		}
		return total
	case altExpr:
		max := 0
		for _, sub := range v.es {
			n := MaxLen(sub)
			if n == Unbounded {
				return Unbounded
			}
			if n > max {
				max = n
			}
		}
		return max
	case repExpr:
		n := MaxLen(v.e)
		if n == 0 {
			return 0
		}
		if n == Unbounded || v.max == Unbounded {
			return Unbounded
		}
		return n * v.max
	}
	panic("pre: unknown expression node")
}

// MinLen returns the length of the shortest path matched by e. For None it
// returns 0 by convention (there is no path at all).
func MinLen(e Expr) int {
	switch v := e.(type) {
	case epsExpr, noneExpr, repExpr:
		return 0
	case symExpr:
		return 1
	case catExpr:
		total := 0
		for _, sub := range v.es {
			total += MinLen(sub)
		}
		return total
	case altExpr:
		min := -1
		for _, sub := range v.es {
			n := MinLen(sub)
			if min == -1 || n < min {
				min = n
			}
		}
		if min == -1 {
			return 0
		}
		return min
	}
	panic("pre: unknown expression node")
}

// Matches reports whether the given link path is in the language of e.
func Matches(e Expr, path []Link) bool {
	cur := e
	for _, l := range path {
		cur = Derive(cur, l)
		if IsNone(cur) {
			return false
		}
	}
	return Nullable(cur)
}

// Enumerate returns every path of length at most maxLen matched by e, in
// order of increasing length (ties broken lexicographically by I < L < G
// per the Links order). It is intended for tests and for the centralized
// baseline on bounded PREs.
func Enumerate(e Expr, maxLen int) [][]Link {
	type item struct {
		path []Link
		rem  Expr
	}
	var out [][]Link
	frontier := []item{{nil, e}}
	for depth := 0; depth <= maxLen; depth++ {
		var next []item
		for _, it := range frontier {
			if Nullable(it.rem) {
				out = append(out, it.path)
			}
			if depth == maxLen {
				continue
			}
			for _, l := range First(it.rem) {
				d := Derive(it.rem, l)
				if IsNone(d) {
					continue
				}
				p := make([]Link, len(it.path)+1)
				copy(p, it.path)
				p[len(it.path)] = l
				next = append(next, item{p, d})
			}
		}
		frontier = next
	}
	// Deduplicate paths produced through different derivative branches.
	seen := make(map[string]bool)
	var uniq [][]Link
	for _, p := range out {
		k := pathKey(p)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, p)
		}
	}
	sort.SliceStable(uniq, func(i, j int) bool {
		if len(uniq[i]) != len(uniq[j]) {
			return len(uniq[i]) < len(uniq[j])
		}
		return pathKey(uniq[i]) < pathKey(uniq[j])
	})
	return uniq
}

func pathKey(p []Link) string {
	var b strings.Builder
	order := map[Link]byte{Interior: 'a', Local: 'b', Global: 'c'}
	for _, l := range p {
		b.WriteByte(order[l])
	}
	return b.String()
}
