package pre

import (
	"fmt"
	"testing"
)

func TestParseCachedHitAndEquivalence(t *testing.T) {
	const src = "N | G·(L*4)·(G|L)*2"
	e1, hit, err := ParseCached(src)
	if err != nil {
		t.Fatal(err)
	}
	_ = hit // may be warm from another test: the cache is process-wide
	e2, hit, err := ParseCached(src)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second ParseCached missed")
	}
	if e1.String() != e2.String() {
		t.Fatalf("cached expression differs: %q vs %q", e1.String(), e2.String())
	}
	want := MustParse(src)
	if Compare(want, e2) != Duplicate {
		t.Fatalf("cached expression not equivalent to Parse: %s vs %s", want, e2)
	}
}

func TestParseCachedErrorNotCached(t *testing.T) {
	const bad = "G·(L*"
	if _, _, err := ParseCached(bad); err == nil {
		t.Fatal("malformed PRE parsed")
	}
	// An error result must not be cached as a (nil) expression.
	if e, hit, err := ParseCached(bad); err == nil || hit || e != nil {
		t.Fatalf("second call: e=%v hit=%v err=%v, want fresh error", e, hit, err)
	}
}

func TestParseCachedEpochFlush(t *testing.T) {
	// Overflow the cache with distinct strings; it must flush rather than
	// grow without bound, and stay correct afterwards.
	for i := 0; i <= parseCacheMax; i++ {
		src := fmt.Sprintf("N|(G*%d)", i%97+1) // small closed set, re-parsed many times
		if _, _, err := ParseCached(src); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i <= parseCacheMax; i++ {
		if _, _, err := ParseCached(fmt.Sprintf("L*%d·G", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	parseCache.RLock()
	n := len(parseCache.m)
	parseCache.RUnlock()
	if n > parseCacheMax {
		t.Fatalf("cache grew past its bound: %d entries", n)
	}
	e, _, err := ParseCached("G·L")
	if err != nil {
		t.Fatal(err)
	}
	if Compare(MustParse("G·L"), e) != Duplicate {
		t.Fatalf("post-flush parse wrong: %s", e)
	}
}
