package pre

// Relation is the outcome of comparing a newly arrived PRE against one
// recorded in a site's Node-query Log Table (Section 3.1.1 of the paper).
type Relation int

const (
	// Incomparable: the log-table pattern rules establish no relation; the
	// new arrival is processed normally and logged as a fresh entry.
	Incomparable Relation = iota
	// Duplicate: the PREs are syntactically identical; the arrival is a
	// duplicate and is purged.
	Duplicate
	// OldCovers: the logged PRE is a superset of the new one (L*2·G logged,
	// L*1·G arrives); every path the arrival could take has already been
	// explored, so it is purged.
	OldCovers
	// NewCovers: the new PRE is a strict superset of the logged one (L*2·G
	// logged, L*4·G arrives); the log entry is replaced and the query is
	// rewritten with RewriteSuperset so that only the difference is
	// explored.
	NewCovers
)

func (r Relation) String() string {
	switch r {
	case Duplicate:
		return "duplicate"
	case OldCovers:
		return "old-covers"
	case NewCovers:
		return "new-covers"
	}
	return "incomparable"
}

// Compare implements the log-table equivalence rules of Section 3.1.1. It
// relates a previously logged PRE and a newly arrived one:
//
//   - identical PREs are Duplicate;
//   - PREs of the shape A*m·B with the same repeated symbol A and the same
//     tail B are ordered by their bounds (an unbounded star dominates every
//     bound);
//   - anything else is Incomparable.
//
// The comparison is purely syntactic, exactly as in the paper: derivatives
// preserve star bounds, so clones that took different-length prefixes of
// the same starred path arrive with comparable shapes.
func Compare(old, new Expr) Relation {
	if Equal(old, new) {
		return Duplicate
	}
	oldSym, oldMax, oldTail, ok1 := starShape(old)
	newSym, newMax, newTail, ok2 := starShape(new)
	if !ok1 || !ok2 || oldSym != newSym || oldTail != newTail {
		return Incomparable
	}
	switch {
	case oldMax == newMax:
		return Duplicate // same shape, same bound, different rendering cannot happen, but be safe
	case oldMax == Unbounded:
		return OldCovers
	case newMax == Unbounded:
		return NewCovers
	case newMax <= oldMax:
		return OldCovers
	default:
		return NewCovers
	}
}

// starShape matches e against the pattern A*m·B where A is a single link
// symbol. It returns the symbol, the bound m (Unbounded for A*), and the
// canonical string of the tail B (which may be the null link).
func starShape(e Expr) (sym Link, max int, tail string, ok bool) {
	var head Expr
	var rest Expr
	switch v := e.(type) {
	case repExpr:
		head, rest = v, Eps()
	case catExpr:
		head, rest = v.es[0], Cat(v.es[1:]...)
	default:
		return 0, 0, "", false
	}
	rep, ok2 := head.(repExpr)
	if !ok2 {
		return 0, 0, "", false
	}
	s, ok3 := rep.e.(symExpr)
	if !ok3 {
		return 0, 0, "", false
	}
	return s.l, rep.max, rest.String(), true
}

// RewriteSuperset applies the paper's query-multiple-rewrite rule: a PRE of
// shape A*m·B becomes A·A*(m-1)·B, which forces the current node to act as
// a PureRouter (the paths covered by the logged smaller bound, including
// evaluating the node-query here, have already been explored) while leaving
// the star bound syntactically intact for comparisons at downstream nodes.
// The second result reports whether the rule applied.
func RewriteSuperset(e Expr) (Expr, bool) {
	var repPart repExpr
	var tailParts []Expr
	switch v := e.(type) {
	case repExpr:
		repPart = v
	case catExpr:
		r, ok := v.es[0].(repExpr)
		if !ok {
			return e, false
		}
		repPart = r
		tailParts = v.es[1:]
	default:
		return e, false
	}
	s, ok := repPart.e.(symExpr)
	if !ok {
		return e, false
	}
	inner := Unbounded
	if repPart.max != Unbounded {
		inner = repPart.max - 1
	}
	parts := append([]Expr{Sym(s.l), Rep(Sym(s.l), inner)}, tailParts...)
	return Cat(parts...), true
}
