package pre

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"L", "L"},
		{"G", "G"},
		{"I", "I"},
		{"N", "N"},
		{"L*", "L*"},
		{"L*4", "L*4"},
		{"G·L", "G·L"},
		{"G.L", "G·L"},
		{"GL", "G·L"},
		{"G·(L*4)", "G·L*4"},
		{"N | G·(L*4)", "N|G·L*4"},
		{"G·(G|L)", "G·(G|L)"},
		{"(G|L)·(G|L)", "(G|L)·(G|L)"},
		{"L*2·G", "L*2·G"},
		{"  L * 2 · G ", "L*2·G"},
		{"((L))", "L"},
		{"L|L", "L"},       // duplicate branch removed
		{"N·G", "G"},       // null link is the unit of concatenation
		{"L*0", "N"},       // zero repetitions is the null link
		{"(L*2)*3", "L*6"}, // nested bounded repetitions multiply
		{"(L*2)*", "L*"},   // unbounded dominates
		{"N*", "N"},        // repeating the null link is the null link
		{"G|N|L", "G|N|L"}, // order preserved
		{"I·L·G", "I·L·G"}, // all three symbols
		{"(G|L)*3", "(G|L)*3"},
	}
	for _, c := range cases {
		e, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// String must re-parse to the same expression.
		e2, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e.String(), err)
		}
		if !Equal(e, e2) {
			t.Errorf("round trip of %q: %q != %q", c.in, e.String(), e2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "X", "L|", "(L", "L)", "·L", "|G", "L*99999999", "L**", "()"} {
		if e, err := Parse(in); err == nil {
			// "L**" is actually legal (star of star); exempt legal ones.
			if in == "L**" {
				if e.String() != "L*" {
					t.Errorf("Parse(L**) = %q, want L*", e.String())
				}
				continue
			}
			t.Errorf("Parse(%q) = %q, want error", in, e.String())
		}
	}
}

func TestNullable(t *testing.T) {
	cases := map[string]bool{
		"N":        true,
		"L":        false,
		"L*":       true,
		"L*3":      true,
		"G·L":      false,
		"N|G":      true,
		"G·L*":     false,
		"L*·G*":    true,
		"(N|G)·L*": true,
	}
	for in, want := range cases {
		if got := Nullable(MustParse(in)); got != want {
			t.Errorf("Nullable(%s) = %v, want %v", in, got, want)
		}
	}
}

func TestFirst(t *testing.T) {
	cases := map[string]string{
		"N":         "",
		"L":         "L",
		"G·L":       "G",
		"G|L":       "LG",
		"L*·G":      "LG",
		"N|G·(L*4)": "G",
		"I·L":       "I",
		"(N|L)·G":   "LG",
	}
	for in, want := range cases {
		var got strings.Builder
		for _, l := range First(MustParse(in)) {
			got.WriteString(l.String())
		}
		if got.String() != want {
			t.Errorf("First(%s) = %q, want %q", in, got.String(), want)
		}
	}
}

func TestDerive(t *testing.T) {
	cases := []struct {
		in   string
		link Link
		want string
	}{
		{"L", Local, "N"},
		{"L", Global, "∅"},
		{"G·L", Global, "L"},
		{"G·L", Local, "∅"},
		{"L*", Local, "L*"},
		{"L*4", Local, "L*3"},
		{"L*1", Local, "N"},
		{"G·(G|L)", Global, "G|L"},
		{"G|L", Global, "N"},
		{"L*2·G", Local, "L*1·G"},
		{"L*2·G", Global, "N"},
		{"N|G·(L*4)", Global, "L*4"},
		{"L*·G", Local, "L*·G"},
		{"L*·G", Global, "N"},
		{"(G|L)·(G|L)", Local, "G|L"},
	}
	for _, c := range cases {
		got := Derive(MustParse(c.in), c.link)
		if got.String() != c.want {
			t.Errorf("Derive(%s, %s) = %s, want %s", c.in, c.link, got, c.want)
		}
	}
}

func TestDeriveKeepsStarBounds(t *testing.T) {
	// The paper's Section 3.1.1 depends on derivatives preserving star
	// bounds: L*4 after one L must be L*3, not L·L·L.
	e := MustParse("L*4·G")
	for i := 3; i >= 0; i-- {
		e = Derive(e, Local)
		want := "L*" + string(rune('0'+i)) + "·G"
		if i == 0 {
			want = "G"
		}
		if e.String() != want {
			t.Fatalf("after derivation, got %s, want %s", e, want)
		}
	}
}

func TestMatches(t *testing.T) {
	cases := []struct {
		pre  string
		path string
		want bool
	}{
		{"N|G·(L*4)", "", true},
		{"N|G·(L*4)", "G", true},
		{"N|G·(L*4)", "G·L·L·L·L", true},
		{"N|G·(L*4)", "G·L·L·L·L·L", false},
		{"N|G·(L*4)", "L", false},
		{"G·(G|L)", "G·G", true},
		{"G·(G|L)", "G·L", true},
		{"G·(G|L)", "G", false},
		{"L*", "", true},
		{"L*", "L·L·L·L·L·L·L", true},
		{"L*", "L·G", false},
		{"L*2·G", "G", true},
		{"L*2·G", "L·G", true},
		{"L*2·G", "L·L·G", true},
		{"L*2·G", "L·L·L·G", false},
	}
	for _, c := range cases {
		path, err := ParsePath(c.path)
		if err != nil {
			t.Fatal(err)
		}
		if got := Matches(MustParse(c.pre), path); got != c.want {
			t.Errorf("Matches(%s, %s) = %v, want %v", c.pre, c.path, got, c.want)
		}
	}
}

func TestMaxMinLen(t *testing.T) {
	cases := []struct {
		in       string
		min, max int
	}{
		{"N", 0, 0},
		{"L", 1, 1},
		{"L*4", 0, 4},
		{"L*", 0, Unbounded},
		{"G·(L*4)", 1, 5},
		{"N|G·L", 0, 2},
		{"(G|L·L)·I", 2, 3},
		{"(L*2)·(G*3)", 0, 5},
	}
	for _, c := range cases {
		e := MustParse(c.in)
		if got := MinLen(e); got != c.min {
			t.Errorf("MinLen(%s) = %d, want %d", c.in, got, c.min)
		}
		if got := MaxLen(e); got != c.max {
			t.Errorf("MaxLen(%s) = %d, want %d", c.in, got, c.max)
		}
	}
}

func TestEnumerate(t *testing.T) {
	got := Enumerate(MustParse("N|G·(L*2)"), 5)
	want := []string{"N", "G", "G·L", "G·L·L"}
	if len(got) != len(want) {
		t.Fatalf("Enumerate returned %d paths, want %d", len(got), len(want))
	}
	for i, p := range got {
		if FormatPath(p) != want[i] {
			t.Errorf("path %d = %s, want %s", i, FormatPath(p), want[i])
		}
	}
}

func TestCompareStarBounds(t *testing.T) {
	cases := []struct {
		old, new string
		want     Relation
	}{
		// The paper's worked examples from Section 3.1.1.
		{"L*2·G", "L*1·G", OldCovers},
		{"L*2·G", "L*4·G", NewCovers},
		{"L*2·G", "L*2·G", Duplicate},
		{"L*·G", "L*7·G", OldCovers},
		{"L*3·G", "L*·G", NewCovers},
		{"L*2·G", "G*2·G", Incomparable},
		{"L*2·G", "L*2·L", Incomparable},
		{"L*2", "L*5", NewCovers},
		{"L*5", "L*2", OldCovers},
		{"G·L", "G·L", Duplicate},
		{"G·L", "L·G", Incomparable},
		{"L*2·(G|L)", "L*3·(G|L)", NewCovers},
	}
	for _, c := range cases {
		got := Compare(MustParse(c.old), MustParse(c.new))
		if got != c.want {
			t.Errorf("Compare(%s, %s) = %s, want %s", c.old, c.new, got, c.want)
		}
	}
}

func TestRewriteSuperset(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		applied bool
	}{
		{"L*4·G", "L·L*3·G", true},
		{"L*1·G", "L·G", true},
		{"L*·G", "L·L*·G", true},
		{"L*3", "L·L*2", true},
		{"G·L", "G·L", false},
		{"(G|L)*2·G", "(G|L)*2·G", false}, // rule only covers single-symbol stars
	}
	for _, c := range cases {
		got, applied := RewriteSuperset(MustParse(c.in))
		if applied != c.applied || got.String() != c.want {
			t.Errorf("RewriteSuperset(%s) = (%s, %v), want (%s, %v)",
				c.in, got, applied, c.want, c.applied)
		}
	}
}

func TestRewriteSupersetForcesPureRouter(t *testing.T) {
	// After the rewrite the node must not evaluate the node-query locally:
	// the rewritten PRE must not be nullable even when the original was.
	for _, in := range []string{"L*4", "L*4·G*2", "L*"} {
		got, applied := RewriteSuperset(MustParse(in))
		if !applied {
			t.Fatalf("RewriteSuperset(%s) did not apply", in)
		}
		if Nullable(got) {
			t.Errorf("RewriteSuperset(%s) = %s is still nullable", in, got)
		}
	}
}

func TestDFAContains(t *testing.T) {
	cases := []struct {
		super, sub string
		want       bool
	}{
		{"L*4·G", "L*2·G", true},
		{"L*2·G", "L*4·G", false},
		{"L*", "L*100", true},
		{"G|L", "L", true},
		{"L", "G|L", false},
		{"(G|L)·(G|L)", "G·L", true},
		{"G·L", "(G|L)·(G|L)", false},
		{"L·L*1·G", "L*2·G", false}, // rewrite removes the short paths
		{"L*2·G", "L·L*1·G", true},
		{"N", "N", true},
		{"L*", "N", true},
	}
	for _, c := range cases {
		got, err := Contains(MustParse(c.super), MustParse(c.sub))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Contains(%s, %s) = %v, want %v", c.super, c.sub, got, c.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"L·L*1·G | G | L·G", "L*2·G", true},
		{"(G|L)", "(L|G)", true},
		{"L*", "N|L·L*", true},
		{"L*2", "L*3", false},
	}
	for _, c := range cases {
		got, err := Equivalent(MustParse(c.a), MustParse(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Equivalent(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// randomExpr builds a random PRE of bounded depth for property tests.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return Sym(Interior)
		case 1:
			return Sym(Local)
		case 2:
			return Sym(Global)
		default:
			return Eps()
		}
	}
	switch r.Intn(4) {
	case 0:
		return Cat(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 1:
		return Alt(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 2:
		return Rep(randomExpr(r, depth-1), 1+r.Intn(4))
	default:
		return randomExpr(r, depth-1)
	}
}

func randomPath(r *rand.Rand, maxLen int) []Link {
	n := r.Intn(maxLen + 1)
	p := make([]Link, n)
	for i := range p {
		p[i] = Links[r.Intn(len(Links))]
	}
	return p
}

// exprPath is a quick.Generator seed: a random expression plus a random path.
type exprPath struct {
	Seed int64
}

func TestQuickDeriveAgreesWithDFA(t *testing.T) {
	// Property: derivative-based matching and compiled-DFA matching agree
	// on every (expression, path) pair.
	f := func(ep exprPath) bool {
		r := rand.New(rand.NewSource(ep.Seed))
		e := randomExpr(r, 3)
		d, err := CompileDFA(e)
		if err != nil {
			return true // skip pathological blowups
		}
		for i := 0; i < 20; i++ {
			p := randomPath(r, 6)
			if Matches(e, p) != d.Accepts(p) {
				t.Logf("mismatch: e=%s path=%s", e, FormatPath(p))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickDeriveStepProperty(t *testing.T) {
	// Property: Matches(e, l:rest) == Matches(Derive(e,l), rest).
	f := func(ep exprPath) bool {
		r := rand.New(rand.NewSource(ep.Seed))
		e := randomExpr(r, 3)
		for i := 0; i < 20; i++ {
			p := randomPath(r, 6)
			if len(p) == 0 {
				continue
			}
			if Matches(e, p) != Matches(Derive(e, p[0]), p[1:]) {
				t.Logf("mismatch: e=%s path=%s", e, FormatPath(p))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(ep exprPath) bool {
		r := rand.New(rand.NewSource(ep.Seed))
		e := randomExpr(r, 4)
		e2, err := Parse(e.String())
		if err != nil {
			t.Logf("Parse(%q): %v", e.String(), err)
			return false
		}
		return Equal(e, e2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickRewriteLanguage(t *testing.T) {
	// Property: the rewritten PRE's language is contained in the original's
	// and excludes the zero-length path.
	f := func(ep exprPath) bool {
		r := rand.New(rand.NewSource(ep.Seed))
		sym := Links[r.Intn(len(Links))]
		bound := 1 + r.Intn(5)
		tail := randomExpr(r, 2)
		e := Cat(Rep(Sym(sym), bound), tail)
		rw, applied := RewriteSuperset(e)
		if !applied {
			// Simplification may have collapsed the star; that is fine.
			return true
		}
		ok, err := Contains(e, rw)
		if err != nil {
			return true
		}
		if !ok {
			t.Logf("rewrite of %s to %s escapes the language", e, rw)
			return false
		}
		return !Nullable(rw) || Nullable(Derive(rw, sym)) // rewritten form never matches empty path outright
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareSoundness(t *testing.T) {
	// Property: whenever the syntactic Compare claims coverage, DFA
	// containment confirms it.
	f := func(ep exprPath) bool {
		r := rand.New(rand.NewSource(ep.Seed))
		sym := Links[r.Intn(len(Links))]
		tail := randomExpr(r, 2)
		m, n := r.Intn(6), r.Intn(6)
		old := Cat(Rep(Sym(sym), m), tail)
		new := Cat(Rep(Sym(sym), n), tail)
		switch Compare(old, new) {
		case OldCovers, Duplicate:
			ok, err := Contains(old, new)
			if err != nil {
				return true
			}
			if !ok {
				t.Logf("Compare says old %s covers new %s but containment fails", old, new)
			}
			return ok
		case NewCovers:
			ok, err := Contains(new, old)
			if err != nil {
				return true
			}
			if !ok {
				t.Logf("Compare says new %s covers old %s but containment fails", new, old)
			}
			return ok
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParsePathAndFormat(t *testing.T) {
	p, err := ParsePath("G·L·L")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, []Link{Global, Local, Local}) {
		t.Fatalf("ParsePath = %v", p)
	}
	if FormatPath(p) != "G·L·L" {
		t.Fatalf("FormatPath = %s", FormatPath(p))
	}
	if FormatPath(nil) != "N" {
		t.Fatalf("FormatPath(nil) = %s", FormatPath(nil))
	}
	if _, err := ParsePath("GXL"); err == nil {
		t.Fatal("ParsePath(GXL) should fail")
	}
}

func TestLinkValid(t *testing.T) {
	for _, l := range Links {
		if !l.Valid() {
			t.Errorf("Link %s should be valid", l)
		}
	}
	if Link('X').Valid() {
		t.Error("Link X should be invalid")
	}
}
