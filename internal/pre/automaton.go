package pre

import (
	"fmt"
	"sort"
	"strings"
)

// DFA is a deterministic finite automaton over the three-letter link
// alphabet, compiled from a PRE by CompileDFA. State 0 is the start state.
// Missing transitions go to an implicit dead state.
type DFA struct {
	// Trans[s][i] is the successor of state s on Links[i], or -1.
	Trans [][3]int
	// Accept[s] reports whether state s is accepting.
	Accept []bool
}

// maxDFAStates bounds subset construction; PREs in queries are tiny, so the
// bound exists only to keep adversarial inputs from allocating unboundedly.
const maxDFAStates = 1 << 14

func linkIndex(l Link) int {
	switch l {
	case Interior:
		return 0
	case Local:
		return 1
	case Global:
		return 2
	}
	return -1
}

// CompileDFA compiles e into a DFA by the derivative method: states are
// canonical derivative strings, transitions are Derive. The construction
// terminates because bounded repetitions only shrink and the simplifying
// constructors keep the derivative set finite.
func CompileDFA(e Expr) (*DFA, error) {
	index := map[string]int{}
	var exprs []Expr
	intern := func(x Expr) int {
		s := x.String()
		if id, ok := index[s]; ok {
			return id
		}
		id := len(exprs)
		index[s] = id
		exprs = append(exprs, x)
		return id
	}
	intern(e)
	d := &DFA{}
	for state := 0; state < len(exprs); state++ {
		if len(exprs) > maxDFAStates {
			return nil, fmt.Errorf("pre: DFA for %q exceeds %d states", e, maxDFAStates)
		}
		cur := exprs[state]
		var row [3]int
		for i, l := range Links {
			next := Derive(cur, l)
			if IsNone(next) {
				row[i] = -1
				continue
			}
			row[i] = intern(next)
		}
		d.Trans = append(d.Trans, row)
		d.Accept = append(d.Accept, Nullable(cur))
	}
	return d, nil
}

// Step returns the successor state on link l, or -1 for the dead state.
func (d *DFA) Step(state int, l Link) int {
	if state < 0 {
		return -1
	}
	return d.Trans[state][linkIndex(l)]
}

// Accepts reports whether d accepts the given link path.
func (d *DFA) Accepts(path []Link) bool {
	s := 0
	for _, l := range path {
		s = d.Step(s, l)
		if s < 0 {
			return false
		}
	}
	return d.Accept[s]
}

// Contains reports whether the language of sub is a subset of the language
// of super: every path matched by sub is also matched by super. It is the
// decision procedure behind the engine's optional strong duplicate-
// detection mode, which generalizes the paper's syntactic star-bound test.
func Contains(super, sub Expr) (bool, error) {
	a, err := CompileDFA(super)
	if err != nil {
		return false, err
	}
	b, err := CompileDFA(sub)
	if err != nil {
		return false, err
	}
	// Search the product automaton for a path accepted by sub but not by
	// super (including paths on which super is already dead).
	type pair struct{ pa, pb int }
	seen := map[pair]bool{{0, 0}: true}
	queue := []pair{{0, 0}}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		accB := p.pb >= 0 && b.Accept[p.pb]
		accA := p.pa >= 0 && a.Accept[p.pa]
		if accB && !accA {
			return false, nil
		}
		for _, l := range Links {
			nb := -1
			if p.pb >= 0 {
				nb = b.Step(p.pb, l)
			}
			if nb < 0 {
				continue // sub is dead along this path; nothing to witness
			}
			na := -1
			if p.pa >= 0 {
				na = a.Step(p.pa, l)
			}
			np := pair{na, nb}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true, nil
}

// Equivalent reports whether a and b denote the same path language.
func Equivalent(a, b Expr) (bool, error) {
	ab, err := Contains(a, b)
	if err != nil {
		return false, err
	}
	if !ab {
		return false, nil
	}
	return Contains(b, a)
}

// Dump renders the DFA in a compact human-readable form, for debugging and
// for the webgen tool's -dfa flag.
func (d *DFA) Dump() string {
	var b strings.Builder
	for s := range d.Trans {
		mark := " "
		if d.Accept[s] {
			mark = "*"
		}
		var parts []string
		for i, l := range Links {
			if t := d.Trans[s][i]; t >= 0 {
				parts = append(parts, fmt.Sprintf("%s→%d", l, t))
			}
		}
		sort.Strings(parts)
		fmt.Fprintf(&b, "%s%d: %s\n", mark, s, strings.Join(parts, " "))
	}
	return b.String()
}
