package pre

import "sync"

// parseCacheMax bounds the process-wide parse cache. The PREs that reach
// a query server come from a small closed set per workload — the original
// query's stage PREs plus their link derivatives — so the bound exists
// only to keep a pathological stream of distinct strings from growing the
// map forever. Crossing it flushes the whole map: an epoch flush needs no
// per-entry bookkeeping and the next few arrivals simply repopulate the
// working set.
const parseCacheMax = 8192

var parseCache = struct {
	sync.RWMutex
	m map[string]Expr
}{m: make(map[string]Expr, 64)}

// ParseCached is Parse through a process-wide cache keyed by the exact
// source string; hit reports whether the expression came from the cache.
// Sharing parsed expressions across goroutines and servers is safe
// because expressions are immutable (see the package comment). Parse
// errors are never cached: malformed strings are rare (they retire their
// clones) and caching them would pin garbage.
func ParseCached(s string) (e Expr, hit bool, err error) {
	parseCache.RLock()
	e, ok := parseCache.m[s]
	parseCache.RUnlock()
	if ok {
		return e, true, nil
	}
	e, err = Parse(s)
	if err != nil {
		return nil, false, err
	}
	parseCache.Lock()
	if len(parseCache.m) >= parseCacheMax {
		parseCache.m = make(map[string]Expr, 64)
	}
	parseCache.m[s] = e
	parseCache.Unlock()
	return e, false, nil
}
