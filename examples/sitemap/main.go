// Sitemap is the paper's Section 1 motivating application: build a site
// map of a web domain without downloading its documents. The
// link-extraction query ships to the domain's servers, each site walks
// its own pages, and only the (source, destination) link pairs come back.
// The map is then compared, byte for byte of network cost, against the
// crawl a centralized data-shipping mapper would have performed.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"webdis"
)

func main() {
	// A mid-sized hierarchical domain: ~120 pages over ~24 sites.
	web := webdis.TreeWeb(webdis.TreeOpts{
		Fanout:       3,
		Depth:        4,
		PagesPerSite: 5,
		Seed:         2026,
	})
	d, err := webdis.NewDeployment(webdis.Config{Web: web})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	start := web.First()
	q, err := d.Run(fmt.Sprintf(`
select a.base, a.href, a.ltype
from document d such that %q N|(L|G)* d,
     anchor a`, start), webdis.Forever)
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the map: per page, its outgoing links.
	links := make(map[string][]string)
	var edges int
	for _, table := range q.Results() {
		for _, row := range table.Rows {
			kind := "local"
			if row[2] == "G" {
				kind = "global"
			}
			links[row[0]] = append(links[row[0]], fmt.Sprintf("%s (%s)", row[1], kind))
			edges++
		}
	}
	pages := make([]string, 0, len(links))
	for p := range links {
		pages = append(pages, p)
	}
	sort.Strings(pages)

	fmt.Printf("site map of %s: %d pages with outgoing links, %d edges\n\n", start, len(pages), edges)
	for _, p := range pages[:min(5, len(pages))] {
		fmt.Println(p)
		for _, l := range links[p] {
			fmt.Println("   ->", l)
		}
	}
	if len(pages) > 5 {
		fmt.Printf("   … %d more pages\n", len(pages)-5)
	}

	// Cost comparison against the centralized crawler.
	shipped := d.Network().Stats().Snapshot().Total()
	d.Network().Stats().Reset()
	wq, err := webdis.ParseDISQL(fmt.Sprintf(
		`select a.base, a.href, a.ltype from document d such that %q N|(L|G)* d, anchor a`, start))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := webdis.RunCentralized(d, wq, webdis.CentralizedOptions{}); err != nil {
		log.Fatal(err)
	}
	crawled := d.Network().Stats().Snapshot().Total()

	fmt.Printf("\nnetwork cost to build the map:\n")
	fmt.Printf("  query shipping (WEBDIS): %8d bytes, %4d messages\n", shipped.Bytes, shipped.Messages)
	fmt.Printf("  data shipping  (crawl) : %8d bytes, %4d messages  (corpus is %d bytes)\n",
		crawled.Bytes, crawled.Messages, web.TotalBytes())
	fmt.Printf("  reduction              : %.1fx\n", float64(crawled.Bytes)/float64(shipped.Bytes))
	_ = strings.TrimSpace
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
