// Linkcheck is the paper's web-site maintenance application (Section
// 1.2): detect "floating links" — hyperlinks pointing at documents that
// no longer exist — by shipping a link-walking query across the site's
// servers instead of crawling the site. Every dangling destination shows
// up as a document-load error at its home server, which the deployment
// metrics expose.
package main

import (
	"fmt"
	"log"
	"sync"

	"webdis"
)

func main() {
	// A small web with deliberate rot: two floating links.
	web := webdis.NewWeb()
	home := web.NewPage("http://site.example/index.html", "Site")
	home.AddText("A site with some link rot.")
	home.AddLink("/docs.html", "Docs")
	home.AddLink("/old-news.html", "Old news") // floating: page was deleted

	docs := web.NewPage("http://site.example/docs.html", "Docs")
	docs.AddText("Documentation index.")
	docs.AddLink("/manual.html", "Manual")
	docs.AddLink("http://mirror.example/archive.html", "Mirror archive") // floating on another site

	web.NewPage("http://site.example/manual.html", "Manual").AddText("RTFM.")
	web.NewPage("http://mirror.example/index.html", "Mirror").AddText("Mirror home.")

	var mu sync.Mutex
	floating := make(map[string]bool)
	d, err := webdis.NewDeployment(webdis.Config{
		Web: web,
		Server: webdis.ServerOptions{
			Trace: func(e webdis.TraceEvent) {
				if e.Action == "missing" {
					mu.Lock()
					floating[e.Node] = true
					mu.Unlock()
				}
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Walk every link reachable from the homepage. The query needs no
	// predicate: reaching a node is what verifies it exists.
	_, err = d.Run(`
select d.url
from document d such that "http://site.example/index.html" N|(L|G)* d`, webdis.Forever)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("checked site http://site.example/ (%d pages in corpus)\n", web.NumPages())
	if n := d.Metrics().DocErrors.Load(); n == 0 {
		fmt.Println("no floating links found")
		return
	}
	fmt.Println("floating links detected:")
	mu.Lock()
	for url := range floating {
		fmt.Println("  ", url)
	}
	mu.Unlock()
}
