// Search demonstrates the paper's Section 1.1 automated StartNode path:
// instead of supplying URLs from domain knowledge, the query names a
// search-index term — `index("laboratories department")` — which the
// user-site resolves against the deployment's index before shipping the
// query. It also shows anytime results: the query's progress and partial
// answer are sampled while it runs.
package main

import (
	"fmt"
	"log"
	"time"

	"webdis"
)

func main() {
	d, err := webdis.NewDeployment(webdis.Config{
		Web: webdis.CampusWeb(),
		Net: webdis.NetOptions{Latency: 2 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Peek at what the index would resolve (webgen -search does the same).
	ix, err := d.Index()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("search index: %d documents, %d terms\n", ix.Docs(), ix.Terms())
	for _, hit := range ix.Lookup("laboratories department", 3) {
		fmt.Printf("  score %-3d %s\n", hit.Score, hit.URL)
	}

	// The convener query, started from the index instead of a URL.
	q, err := d.SubmitDISQL(`
select d0.url, d1.url, r.text
from document d0 such that index("laboratories department") N d0,
where d0.title contains "lab"
     document d1 such that d0 G·(L*1) d1,
     relinfon r such that r.delimiter = "hr",
where (r.text contains "convener")`)
	if err != nil {
		log.Fatal(err)
	}

	// Sample the anytime answer while the query runs.
	for !q.Done() {
		fmt.Printf("  … %2d rows so far, progress %3.0f%%\n", q.RowCount(), 100*q.Progress())
		time.Sleep(3 * time.Millisecond)
	}
	if err := q.Wait(webdis.Forever); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nconveners found:")
	for _, table := range q.Results() {
		if table.Stage != 1 {
			continue
		}
		for _, row := range table.Rows {
			fmt.Printf("  %s\n    %s\n", row[0], row[1])
		}
	}
}
