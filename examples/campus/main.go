// Campus reproduces the paper's Section 5 sample execution end to end:
// the convener query (Example Query 2) over the IISc campus web, printing
// the query's traversal — the paper's Figure 7 — and the final result
// table — the paper's Figure 8.
package main

import (
	"fmt"
	"log"
	"sync"

	"webdis"
)

func main() {
	var mu sync.Mutex
	var trace []webdis.TraceEvent

	d, err := webdis.NewDeployment(webdis.Config{
		Web: webdis.CampusWeb(),
		Server: webdis.ServerOptions{
			Trace: func(e webdis.TraceEvent) {
				mu.Lock()
				trace = append(trace, e)
				mu.Unlock()
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	fmt.Println("DISQL query (the paper's Example Query 2):")
	fmt.Print(webdis.CampusQuery)

	q, err := d.Run(webdis.CampusQuery, webdis.Forever)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Traversal of the query (Figure 7):")
	mu.Lock()
	for _, e := range trace {
		fmt.Printf("  %-47s state %-12s %s %s\n", e.Node, e.State, e.Action, e.Detail)
	}
	mu.Unlock()

	fmt.Println("\nResults of the query (Figure 8):")
	for _, table := range q.Results() {
		fmt.Printf("  q%d  %v\n", table.Stage+1, table.Cols)
		for _, row := range table.Rows {
			fmt.Printf("    %q\n", row)
		}
	}

	st := q.Stats()
	fmt.Printf("\nCHT protocol: %d entries entered, %d retired, peak %d live; %d result messages; done in %v\n",
		st.EntriesAdded, st.EntriesRetired, st.PeakLive, st.ResultMsgs, st.Duration.Round(0))
}
