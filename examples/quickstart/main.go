// Quickstart: build a tiny two-site web, deploy WEBDIS over it, and run
// the paper's Example Query 1 — extract all global links reachable over
// local links from a start page — entirely by query shipping.
package main

import (
	"fmt"
	"log"

	"webdis"
)

func main() {
	// A small corpus: one department site with three pages and an external
	// site it links to.
	web := webdis.NewWeb()

	home := web.NewPage("http://dept.example/index.html", "Department Home")
	home.AddText("Welcome to the department.")
	home.AddLink("/research.html", "Research")
	home.AddLink("/people.html", "People")

	research := web.NewPage("http://dept.example/research.html", "Research")
	research.AddText("Our projects and partners.")
	research.AddLink("http://partner.example/index.html", "Partner institute")

	people := web.NewPage("http://dept.example/people.html", "People")
	people.AddText("Faculty and students.")
	people.AddLink("http://scholar.example/alice.html", "Alice's homepage")

	partner := web.NewPage("http://partner.example/index.html", "Partner")
	partner.AddText("An external site.")
	web.NewPage("http://scholar.example/alice.html", "Alice").AddText("Hi!")
	_ = partner

	// One query server per site, one document host per site, an
	// instrumented in-process network.
	d, err := webdis.NewDeployment(webdis.Config{Web: web})
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// Example Query 1: follow local links from the homepage and report
	// every global link found along the way.
	q, err := d.Run(`
select a.base, a.href
from document d such that "http://dept.example/index.html" N|L* d,
     anchor a
where a.ltype = "G"`, webdis.Forever)
	if err != nil {
		log.Fatal(err)
	}

	for _, table := range q.Results() {
		fmt.Printf("node-query q%d: %v\n", table.Stage+1, table.Cols)
		for _, row := range table.Rows {
			fmt.Printf("  %s -> %s\n", row[0], row[1])
		}
	}

	// The engine never moved a document: only query clones and results
	// crossed the (simulated) network.
	st := q.Stats()
	total := d.Network().Stats().Snapshot().Total()
	fmt.Printf("\ncompleted in %v: %d result messages, %d bytes on the wire, 0 documents downloaded\n",
		st.Duration.Round(0), st.ResultMsgs, total.Bytes)
}
