package webdis

import (
	"context"
	"fmt"
	"sort"
)

// ExampleDeployment_RunContext shows the context-first entry point with
// the pull iterator: rows stream in as sites answer, and the loop sees
// them without waiting for distributed completion (RunContext itself
// returns once the CHT drains).
func ExampleDeployment_RunContext() {
	web := NewWeb()
	web.NewPage("http://a.example/p.html", "P").AddText("the needle")

	d, err := NewDeployment(Config{Web: web})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer d.Close()

	q, err := d.RunContext(context.Background(),
		`select d.url from document d such that "http://a.example/p.html" N d where d.text contains "needle"`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for stage, row := range q.Rows() {
		fmt.Println(stage, row[0])
	}
	// Output: 0 http://a.example/p.html
}

// ExampleQuery_Stream consumes results incrementally over a channel
// while the query runs; cancelling the context would stop both the
// stream and the query's in-flight clones.
func ExampleQuery_Stream() {
	web := NewWeb()
	home := web.NewPage("http://a.example/index.html", "Home")
	home.AddText("needle one")
	home.AddLink("/more.html", "more")
	web.NewPage("http://a.example/more.html", "More").AddText("needle two")

	d, err := NewDeployment(Config{Web: web})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer d.Close()

	w, err := ParseDISQL(
		`select d.url from document d such that "http://a.example/index.html" N|L d where d.text contains "needle"`)
	if err != nil {
		fmt.Println(err)
		return
	}
	q, err := d.SubmitContext(context.Background(), w)
	if err != nil {
		fmt.Println(err)
		return
	}
	var urls []string
	for r := range q.Stream(context.Background()) {
		urls = append(urls, r.Row[0])
	}
	sort.Strings(urls)
	for _, u := range urls {
		fmt.Println(u)
	}
	fmt.Println("err:", q.Err())
	// Output:
	// http://a.example/index.html
	// http://a.example/more.html
	// err: <nil>
}
