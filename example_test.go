package webdis

import (
	"context"
	"fmt"
	"sort"
)

// ExampleDeployment_RunContext shows the context-first entry point with
// the pull iterator: rows stream in as sites answer, and the loop sees
// them without waiting for distributed completion (RunContext itself
// returns once the CHT drains).
func ExampleDeployment_RunContext() {
	web := NewWeb()
	web.NewPage("http://a.example/p.html", "P").AddText("the needle")

	d, err := NewDeployment(Config{Web: web})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer d.Close()

	q, err := d.RunContext(context.Background(),
		`select d.url from document d such that "http://a.example/p.html" N d where d.text contains "needle"`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for stage, row := range q.Rows() {
		fmt.Println(stage, row[0])
	}
	// Output: 0 http://a.example/p.html
}

// ExampleQuery_Stream consumes results incrementally over a channel
// while the query runs; cancelling the context would stop both the
// stream and the query's in-flight clones.
func ExampleQuery_Stream() {
	web := NewWeb()
	home := web.NewPage("http://a.example/index.html", "Home")
	home.AddText("needle one")
	home.AddLink("/more.html", "more")
	web.NewPage("http://a.example/more.html", "More").AddText("needle two")

	d, err := NewDeployment(Config{Web: web})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer d.Close()

	w, err := ParseDISQL(
		`select d.url from document d such that "http://a.example/index.html" N|L d where d.text contains "needle"`)
	if err != nil {
		fmt.Println(err)
		return
	}
	q, err := d.SubmitContext(context.Background(), w)
	if err != nil {
		fmt.Println(err)
		return
	}
	var urls []string
	for r := range q.Stream(context.Background()) {
		urls = append(urls, r.Row[0])
	}
	sort.Strings(urls)
	for _, u := range urls {
		fmt.Println(u)
	}
	fmt.Println("err:", q.Err())
	// Output:
	// http://a.example/index.html
	// http://a.example/more.html
	// err: <nil>
}

// ExampleDeployment_Watch registers a continuous query over a mutating
// web: the watch's baseline matches a one-shot run, and when the seeded
// mutation schedule rewrites the page's text the standing result set
// loses its row — delivered as a typed remove delta at epoch 1.
func ExampleDeployment_Watch() {
	web := NewWeb()
	web.NewPage("http://a.example/p.html", "P").AddText("the needle")

	d, err := NewDeployment(Config{
		Web: web,
		// Edit-only schedule: every Mutate step rewrites page text.
		Watch: WatchConfig{Mutations: MutationPlan{Seed: 1, Edit: 1}},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer d.Close()

	ctx := context.Background()
	w, err := d.Watch(ctx,
		`select d.url from document d such that "http://a.example/p.html" N d where d.text contains "needle"`,
		WatchOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer w.Close()

	rows := 0
	for _, t := range w.Results() {
		rows += len(t.Rows)
	}
	fmt.Println("baseline rows:", rows)

	// One mutation step: the edit replaces the page's only text item,
	// so "needle" disappears and the standing row is retracted.
	muts, notified := d.Mutate(1)
	fmt.Println("mutation:", muts[0].Kind)
	if err := w.WaitEpoch(ctx, notified); err != nil {
		fmt.Println(err)
		return
	}
	for delta, err := range w.Deltas() {
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("epoch %d: %s %s\n", delta.Epoch, delta.Op, delta.Row[0])
		break
	}
	// Output:
	// baseline rows: 1
	// mutation: edit
	// epoch 1: remove http://a.example/p.html
}
