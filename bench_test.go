package webdis

// One benchmark per figure and experiment of the paper reproduction (see
// DESIGN.md's experiment index), plus micro-benchmarks for the engine's
// hot paths. End-to-end benchmarks run a full query per iteration over a
// shared deployment and report engine counters with b.ReportMetric, so
// `go test -bench . -benchmem` regenerates every number the paper's
// evaluation implies.

import (
	"fmt"
	"net"
	"testing"
	"time"

	"webdis/internal/disql"
	"webdis/internal/htmlx"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/nodequery"
	"webdis/internal/pre"
	"webdis/internal/relmodel"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// ---------------------------------------------------------------------------
// Micro-benchmarks: the engine's hot paths.

func BenchmarkPREParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := pre.Parse("N | G·(L*4)·(G|L)*2"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPREDerive(b *testing.B) {
	e := pre.MustParse("G·(L*4)·(G|L)*2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := pre.Derive(e, pre.Global)
		if pre.IsNone(d) {
			b.Fatal("dead derivative")
		}
	}
}

func BenchmarkPRECompare(b *testing.B) {
	old := pre.MustParse("L*2·G")
	new := pre.MustParse("L*4·G")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pre.Compare(old, new) != pre.NewCovers {
			b.Fatal("unexpected relation")
		}
	}
}

func BenchmarkPREDFAContains(b *testing.B) {
	super := pre.MustParse("(G|L)*6")
	sub := pre.MustParse("G·L*4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := pre.Contains(super, sub)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkHTMLParse(b *testing.B) {
	web := webgraph.Campus()
	html, _ := web.HTML(webgraph.CampusStart)
	b.SetBytes(int64(len(html)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := htmlx.Parse(webgraph.CampusStart, html); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatabaseConstructor(b *testing.B) {
	web := webgraph.Campus()
	html, _ := web.HTML(webgraph.CampusLabs)
	doc, err := htmlx.Parse(webgraph.CampusLabs, html)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := relmodel.Build(doc)
		if db.Size() == 0 {
			b.Fatal("empty db")
		}
	}
}

func BenchmarkNodeQueryEval(b *testing.B) {
	web := webgraph.Campus()
	html, _ := web.HTML("http://dsl.serc.iisc.ernet.in/people.html")
	db, err := nodeproc.BuildDB("http://dsl.serc.iisc.ernet.in/people.html", html)
	if err != nil {
		b.Fatal(err)
	}
	wq := disql.MustParse(webgraph.CampusDISQL)
	q := wq.Stages[1].Query
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := nodequery.Eval(q, db)
		if err != nil || tbl.Empty() {
			b.Fatal(tbl, err)
		}
	}
}

func BenchmarkDISQLParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := disql.Parse(webgraph.CampusDISQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLogTableCheck(b *testing.B) {
	lt := nodeproc.NewLogTable(nodeproc.DedupSubsume)
	id := wire.QueryID{User: "b", Site: "user/q1", Num: 1}
	rems := []pre.Expr{
		pre.MustParse("L*4·G"), pre.MustParse("L*2·G"),
		pre.MustParse("G|L"), pre.MustParse("N"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node := fmt.Sprintf("http://n%d.example/x.html", i%64)
		lt.Check(node, id, 1, rems[i%len(rems)], "")
	}
}

func BenchmarkWireCloneRoundTrip(b *testing.B) {
	wq := disql.MustParse(webgraph.CampusDISQL)
	msg := &wire.CloneMsg{
		ID:     wire.QueryID{User: "b", Site: "user/q1", Num: 1},
		Dest:   []wire.DestNode{{URL: webgraph.CampusStart, Origin: "user/q1", Seq: 1}},
		Rem:    "G·L*1",
		Stages: nodeproc.EncodeStages(wq.Stages),
	}
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		for {
			if _, err := wire.Receive(c2); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.Send(c1, msg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure benchmarks: one full distributed query per iteration.

// benchQuery measures one full distributed query per iteration. The
// deployment is shared across iterations — starting servers per iteration
// would swamp the measurement — which is safe because queries are
// independent (log tables key by query id).
func benchQuery(b *testing.B, web *Web, opts ServerOptions, src string, metrics ...func(*Deployment, int)) {
	b.Helper()
	d, err := NewDeployment(Config{Web: web, Server: opts, NoDocService: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if len(q.Results()) == 0 {
			b.Fatal("no results")
		}
	}
	b.StopTimer()
	for _, m := range metrics {
		m(d, b.N)
	}
}

// BenchmarkFigure1Traversal regenerates Figure 1 (experiment F1).
func BenchmarkFigure1Traversal(b *testing.B) {
	benchQuery(b, Figure1Web(), ServerOptions{}, Figure1Query,
		func(d *Deployment, n int) {
			m := d.Metrics().Snapshot()
			b.ReportMetric(float64(m.Evaluations)/float64(n), "evals/op")
			b.ReportMetric(float64(m.DupDropped)/float64(n), "dups/op")
		})
}

// BenchmarkFigure5Dedup regenerates Figure 5 with the log table on (F5).
func BenchmarkFigure5Dedup(b *testing.B) {
	benchQuery(b, Figure5Web(), ServerOptions{}, Figure5Query,
		func(d *Deployment, n int) {
			m := d.Metrics().Snapshot()
			b.ReportMetric(float64(m.Evaluations)/float64(n), "evals/op")
			b.ReportMetric(float64(m.DupDropped)/float64(n), "dups/op")
		})
}

// BenchmarkFigure5NoDedup is the F5 ablation: the log table off.
func BenchmarkFigure5NoDedup(b *testing.B) {
	benchQuery(b, Figure5Web(), ServerOptions{Dedup: DedupOff, DedupSet: true, MaxHops: 16}, Figure5Query,
		func(d *Deployment, n int) {
			m := d.Metrics().Snapshot()
			b.ReportMetric(float64(m.Evaluations)/float64(n), "evals/op")
		})
}

// BenchmarkCampusQuery regenerates the Section 5 execution (F7/F8).
func BenchmarkCampusQuery(b *testing.B) {
	benchQuery(b, CampusWeb(), ServerOptions{}, CampusQuery,
		func(d *Deployment, n int) {
			m := d.Metrics().Snapshot()
			b.ReportMetric(float64(m.Evaluations)/float64(n), "evals/op")
			b.ReportMetric(float64(d.Network().Stats().Snapshot().Total().Bytes)/float64(n), "netbytes/op")
		})
}

// ---------------------------------------------------------------------------
// Experiment benchmarks (T1-T7): the table-generating comparisons.

// BenchmarkShipping regenerates experiment T1's depth-3 point: the same
// selective query by query shipping and by data shipping.
func BenchmarkShipping(b *testing.B) {
	web := TreeWeb(TreeOpts{Fanout: 3, Depth: 3, PagesPerSite: 4, MarkerFrac: 0.05, Seed: 42})
	src := fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.text contains "xanadu"`, web.First())

	b.Run("query-shipping", func(b *testing.B) {
		benchQuery(b, web, ServerOptions{}, src,
			func(d *Deployment, n int) {
				bytes := d.Network().Stats().Snapshot().Total().Bytes
				b.ReportMetric(float64(bytes)/float64(n), "netbytes/op")
			})
	})
	b.Run("data-shipping", func(b *testing.B) {
		d, err := NewDeployment(Config{Web: web})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		w, err := ParseDISQL(src)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunCentralized(d, w, CentralizedOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		bytes := d.Network().Stats().Snapshot().Total().Bytes
		b.ReportMetric(float64(bytes)/float64(b.N), "netbytes/op")
	})
}

// BenchmarkLatency regenerates experiment T2's 2ms point.
func BenchmarkLatency(b *testing.B) {
	const lat = 2 * time.Millisecond
	b.Run("query-shipping", func(b *testing.B) {
		d, err := NewDeployment(Config{Web: CampusWeb(), Net: NetOptions{Latency: lat}, NoDocService: true})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.Run(CampusQuery, 30*time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("data-shipping", func(b *testing.B) {
		d, err := NewDeployment(Config{Web: CampusWeb(), Net: NetOptions{Latency: lat}})
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		w, err := ParseDISQL(CampusQuery)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunCentralized(d, w, CentralizedOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDedupAblation regenerates experiment T3: one sub-benchmark per
// log-table mode over the densely cross-linked web.
func BenchmarkDedupAblation(b *testing.B) {
	web := RandomWeb(RandomOpts{Sites: 24, PagesPerSite: 1, GlobalOut: 3, MarkerFrac: 0.4, FillerWords: 60, Seed: 31})
	src := fmt.Sprintf(`select d.url from document d such that %q N|G*6 d where d.text contains "xanadu"`, web.First())
	modes := []struct {
		name string
		opts ServerOptions
	}{
		{"off", ServerOptions{Dedup: DedupOff, DedupSet: true, MaxHops: 10}},
		{"exact", ServerOptions{Dedup: DedupExact, DedupSet: true}},
		{"subsume", ServerOptions{}},
		{"strong", ServerOptions{Dedup: DedupStrong, DedupSet: true}},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			benchQuery(b, web, m.opts, src,
				func(d *Deployment, n int) {
					ms := d.Metrics().Snapshot()
					b.ReportMetric(float64(ms.Evaluations)/float64(n), "evals/op")
					b.ReportMetric(float64(ms.DupDropped)/float64(n), "dropped/op")
				})
		})
	}
}

// BenchmarkBatchingAblation regenerates experiment T4.
func BenchmarkBatchingAblation(b *testing.B) {
	web := TreeWeb(TreeOpts{Fanout: 4, Depth: 4, PagesPerSite: 4, Seed: 7})
	src := fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.url contains "p"`, web.First())
	for _, cfg := range []struct {
		name string
		opts ServerOptions
	}{
		{"batched", ServerOptions{}},
		{"per-node", ServerOptions{NoBatch: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchQuery(b, web, cfg.opts, src,
				func(d *Deployment, n int) {
					m := d.Metrics().Snapshot()
					b.ReportMetric(float64(m.ClonesForwarded+m.LocalClones)/float64(n), "clones/op")
					b.ReportMetric(float64(d.Network().Stats().Snapshot().Total().Bytes)/float64(n), "netbytes/op")
				})
		})
	}
}

// BenchmarkCHTOverhead regenerates experiment T5: what the completion
// protocol costs per query.
func BenchmarkCHTOverhead(b *testing.B) {
	d, err := NewDeployment(Config{Web: CampusWeb(), NoDocService: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	var entries, msgs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := d.Run(CampusQuery, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		st := q.Stats()
		entries += st.EntriesAdded
		msgs += st.ResultMsgs
	}
	b.StopTimer()
	b.ReportMetric(float64(entries)/float64(b.N), "cht-entries/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "result-msgs/op")
}

// BenchmarkTermination regenerates experiment T6's core measurement: how
// long a cancelled query keeps the web busy.
func BenchmarkTermination(b *testing.B) {
	web := ChainWeb(30, 1, 9)
	src := fmt.Sprintf(`select d.url from document d such that %q N|G* d`, web.First())
	d, err := NewDeployment(Config{Web: web, Net: NetOptions{Latency: time.Millisecond}, NoDocService: true})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := d.SubmitDISQL(src)
		if err != nil {
			b.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		q.Cancel()
		// Wait until the cancelled query's clone dies.
		start := d.Metrics().Terminated.Load()
		for d.Metrics().Terminated.Load() == start {
			time.Sleep(100 * time.Microsecond)
		}
	}
}

// BenchmarkRewrite regenerates experiment T7's hot path: a superset
// arrival hitting a populated log table.
func BenchmarkRewrite(b *testing.B) {
	id := wire.QueryID{User: "b", Site: "user/q1", Num: 1}
	small := pre.MustParse("L*2·G")
	big := pre.MustParse("L*4·G")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lt := nodeproc.NewLogTable(nodeproc.DedupSubsume)
		lt.Check("http://n.example/x.html", id, 1, small, "")
		v := lt.Check("http://n.example/x.html", id, 1, big, "")
		if v.Action != nodeproc.Rewrite {
			b.Fatal(v.Action)
		}
	}
}

// BenchmarkMigration regenerates experiment T8's 50% point: the hybrid
// engine with half the sites participating.
func BenchmarkMigration(b *testing.B) {
	web := TreeWeb(TreeOpts{Fanout: 3, Depth: 3, PagesPerSite: 4, MarkerFrac: 0.1, FillerWords: 300, Seed: 17})
	hosts := web.Hosts()
	set := make(map[string]bool)
	for _, h := range hosts[:len(hosts)/2] {
		set[h] = true
	}
	d, err := NewDeployment(Config{Web: web, Participate: func(s string) bool { return set[s] }})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	src := fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.text contains "xanadu"`, web.First())
	var fetches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		fetches += q.FallbackStats().Fetches
	}
	b.StopTimer()
	b.ReportMetric(float64(fetches)/float64(b.N), "fallback-fetches/op")
	b.ReportMetric(float64(d.Network().Stats().Snapshot().Total().Bytes)/float64(b.N), "netbytes/op")
}

// ---------------------------------------------------------------------------
// PR-3 hot-path benchmarks: connection pooling, parse caching, parallel
// fan-out. The full before/after grid (with the per-config counter deltas)
// is experiment T13; regenerate its machine-readable artifact with:
//
//	go run ./cmd/webdis-bench -exp perf   # writes BENCH_PR3.json

// BenchmarkParseStagesCached measures the compiled-query cache against
// the parse-per-arrival path it replaces, on the campus query's stages.
func BenchmarkParseStagesCached(b *testing.B) {
	wq := disql.MustParse(webgraph.CampusDISQL)
	msgs := nodeproc.EncodeStages(wq.Stages)
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := nodeproc.ParseStages(msgs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := nodeproc.ParseStagesCached(msgs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSendPooled measures one framed message delivery with and
// without connection reuse, over the in-process fabric and real TCP.
func BenchmarkSendPooled(b *testing.B) {
	msg := &wire.ResultMsg{ID: wire.QueryID{User: "b", Site: "user/q1", Num: 1}}
	run := func(b *testing.B, tr netsim.Transport, pooled bool) {
		ln, err := tr.Listen("sink")
		if err != nil {
			b.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				c, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer c.Close()
					framed := wire.NewFramed(c)
					for {
						if _, err := wire.Receive(framed); err != nil {
							return
						}
					}
				}()
			}
		}()
		b.ResetTimer()
		if pooled {
			p := netsim.NewPool(tr, "src", netsim.PoolOptions{
				Wrap: func(c net.Conn) net.Conn { return wire.NewFramed(c) },
			})
			defer p.Close()
			for i := 0; i < b.N; i++ {
				c, _, err := p.Get("sink")
				if err != nil {
					b.Fatal(err)
				}
				if err := wire.Send(c, msg); err != nil {
					b.Fatal(err)
				}
				p.Put("sink", c)
			}
			return
		}
		for i := 0; i < b.N; i++ {
			c, err := tr.Dial("src", "sink")
			if err != nil {
				b.Fatal(err)
			}
			if err := wire.Send(c, msg); err != nil {
				b.Fatal(err)
			}
			c.Close()
		}
	}
	b.Run("pipe/dial-per-msg", func(b *testing.B) { run(b, netsim.New(netsim.Options{}), false) })
	b.Run("pipe/pooled", func(b *testing.B) { run(b, netsim.New(netsim.Options{}), true) })
	b.Run("tcp/dial-per-msg", func(b *testing.B) { run(b, netsim.NewTCP(), false) })
	b.Run("tcp/pooled", func(b *testing.B) { run(b, netsim.NewTCP(), true) })
}

// BenchmarkTreeHotPath is the end-to-end fan-out benchmark: one full
// query over the 40-site tree per iteration, seed engine vs the PR-3
// hot path (pooled connections, parallel fan-out, parse cache,
// singleflight + cached DBs).
func BenchmarkTreeHotPath(b *testing.B) {
	web := TreeWeb(TreeOpts{Fanout: 3, Depth: 3, PagesPerSite: 1, MarkerFrac: 0.6, FillerWords: 30, Seed: 7})
	src := fmt.Sprintf(`select d.url from document d such that %q N|(G*3) d where d.text contains %q`,
		web.First(), webgraph.Marker)
	b.Run("baseline", func(b *testing.B) {
		benchQuery(b, web, ServerOptions{NoConnPool: true, SerialFanout: true, NoParseCache: true, NoSingleflight: true}, src)
	})
	b.Run("optimized", func(b *testing.B) {
		benchQuery(b, web, ServerOptions{CacheDBs: true, Workers: 4}, src,
			func(d *Deployment, n int) {
				m := d.Metrics().Snapshot()
				b.ReportMetric(float64(m.ConnReused)/float64(n), "conn-reused/op")
				b.ReportMetric(float64(m.ConnDialed)/float64(n), "conn-dialed/op")
				b.ReportMetric(float64(m.ParseCacheHits)/float64(n), "parse-hits/op")
			})
	})
}
