module webdis

go 1.23
