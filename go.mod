module webdis

go 1.22
