package webdis

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// The facade tests exercise the library exactly as the README shows,
// through the public API only.

func TestQuickstartFlow(t *testing.T) {
	web := NewWeb()
	home := web.NewPage("http://dept.example/index.html", "Home")
	home.AddText("hello")
	home.AddLink("/a.html", "a")
	a := web.NewPage("http://dept.example/a.html", "A")
	a.AddLink("http://other.example/b.html", "b")
	web.NewPage("http://other.example/b.html", "B").AddText("the end")

	d, err := NewDeployment(Config{Web: web})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q, err := d.Run(`
select a.href
from document d such that "http://dept.example/index.html" N|L* d,
     anchor a
where a.ltype = "G"`, Forever)
	if err != nil {
		t.Fatal(err)
	}
	res := q.Results()
	if len(res) != 1 || len(res[0].Rows) != 1 || res[0].Rows[0][0] != "http://other.example/b.html" {
		t.Fatalf("results = %+v", res)
	}
}

func TestCampusFacade(t *testing.T) {
	d, err := NewDeployment(Config{Web: CampusWeb()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(CampusQuery, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Results()) != 2 {
		t.Fatalf("results = %+v", q.Results())
	}
	// And the centralized baseline agrees.
	w, err := ParseDISQL(CampusQuery)
	if err != nil {
		t.Fatal(err)
	}
	cent, err := RunCentralized(d, w, CentralizedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cent.Tables) != 2 || len(cent.Tables[1].Rows) != len(q.Results()[1].Rows) {
		t.Fatalf("centralized disagrees: %+v", cent.Tables)
	}
}

func TestParsePREFacade(t *testing.T) {
	e, err := ParsePRE("N | G·(L*4)")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "N|G·L*4" {
		t.Errorf("e = %s", e)
	}
	if _, err := ParsePRE("(("); err == nil {
		t.Error("bad PRE should fail")
	}
}

func TestGeneratorsFacade(t *testing.T) {
	if Figure1Web().NumPages() != 8 {
		t.Error("figure1")
	}
	if Figure5Web().NumPages() != 7 {
		t.Error("figure5")
	}
	if TreeWeb(TreeOpts{Fanout: 2, Depth: 2, PagesPerSite: 2}).NumPages() != 7 {
		t.Error("tree")
	}
	if ChainWeb(5, 1, 1).NumSites() != 5 {
		t.Error("chain")
	}
	if GridWeb(3, 3, 1).NumPages() != 9 {
		t.Error("grid")
	}
	if RandomWeb(RandomOpts{Sites: 2, PagesPerSite: 3, Seed: 1}).NumPages() != 6 {
		t.Error("random")
	}
}

func TestTraceFacade(t *testing.T) {
	var sawEval atomic.Bool
	d, err := NewDeployment(Config{
		Web: Figure1Web(),
		Server: ServerOptions{Trace: func(e TraceEvent) {
			if e.Action == "eval" {
				sawEval.Store(true)
			}
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Run(Figure1Query, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if !sawEval.Load() {
		t.Error("trace hook never fired")
	}
}

func TestDedupModeNames(t *testing.T) {
	for mode, want := range map[DedupMode]string{
		DedupOff: "off", DedupExact: "exact", DedupSubsume: "subsume", DedupStrong: "strong",
	} {
		if mode.String() != want {
			t.Errorf("%v = %q", mode, mode.String())
		}
	}
}

func TestWebQueryString(t *testing.T) {
	w, err := ParseDISQL(CampusQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.String(), "L q1 G·L*1 q2") {
		t.Errorf("String = %q", w.String())
	}
}

func TestHybridFacade(t *testing.T) {
	// The migration-path API end to end through the facade: only the CSA
	// department participates; answers are unchanged.
	d, err := NewDeployment(Config{
		Web:         CampusWeb(),
		Participate: func(site string) bool { return site == "csa.iisc.ernet.in" },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(CampusQuery, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Results()) != 2 || len(q.Results()[1].Rows) != 3 {
		t.Fatalf("results = %+v", q.Results())
	}
	fs := q.FallbackStats()
	if fs.Fetches == 0 {
		t.Errorf("fallback stats = %+v", fs)
	}
}

func TestIndexFacade(t *testing.T) {
	ix, err := BuildIndex(CampusWeb())
	if err != nil {
		t.Fatal(err)
	}
	if hits := ix.URLs("convener", 0); len(hits) != 3 {
		t.Errorf("hits = %v", hits)
	}
	d, err := NewDeployment(Config{Web: CampusWeb()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ix2, err := d.Index()
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Docs() != 15 {
		t.Errorf("docs = %d", ix2.Docs())
	}
}

func TestAnytimeFacade(t *testing.T) {
	d, err := NewDeployment(Config{
		Web: TreeWeb(TreeOpts{Fanout: 3, Depth: 3, PagesPerSite: 2, MarkerFrac: 0.5, Seed: 3}),
		Net: NetOptions{Latency: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.SubmitDISQL(`select d.url from document d such that "http://t0.example/p0.html" N|(L|G)* d where d.text contains "xanadu"`)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel mid-flight: partial results survive.
	time.Sleep(8 * time.Millisecond)
	partial := q.RowCount()
	q.Cancel()
	if q.RowCount() < partial {
		t.Error("cancel must not lose rows")
	}
	if p := q.Progress(); p != 1 {
		t.Errorf("finished query progress = %v", p) // done (cancelled) reports 1
	}
}

func TestPowerLawFacade(t *testing.T) {
	w := PowerLawWeb(PowerLawOpts{Pages: 60, PagesPerSite: 2, OutLinks: 2, Seed: 4})
	if w.NumPages() != 60 {
		t.Errorf("pages = %d", w.NumPages())
	}
	d, err := NewDeployment(Config{Web: w, NoDocService: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(`select d.url from document d such that "http://pl0.example/p0.html" N|(L|G)*4 d where d.url contains "p"`, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if q.RowCount() == 0 {
		t.Error("no rows on the power-law web")
	}
}
